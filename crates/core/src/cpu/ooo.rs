//! The 4-way out-of-order core model (paper §2.2, §4.1).
//!
//! A NetBurst-like window machine: 64-entry reorder buffer, unified
//! load/store queue with store-to-load forwarding, bimodal branch
//! prediction with squash-and-redirect recovery, non-blocking L1D through
//! MSHRs, and a post-commit store buffer. As the paper emphasizes for
//! SlackSim, "register values are fetched just before execution" and
//! "each instruction \[executes\] when it reaches an execution unit" — the
//! functional work happens at issue/complete, never at dispatch.
//!
//! Pipeline stages, processed oldest-machinery-first each cycle:
//! complete → commit → store-buffer drain → issue → dispatch → fetch.

use super::{Cpu, CpuCtx, SysOutcome};
use crate::config::{CoreConfig, TargetConfig};
use crate::exec::{self, Operands};
use crate::msg::OutKind;
use crate::stats::CoreStats;
use sk_isa::{decode, encode, layout, DecodedInstr, FuClass, Instr, Reg, WORD_BYTES};
use sk_mem::l1::ReqKind;
use sk_mem::mshr::MshrAlloc;
use sk_mem::{block_of, BlockAddr, L1Cache, L1Outcome, LineState, MshrFile};
use sk_snap::{Persist, Reader, SnapError, Writer};
use std::collections::VecDeque;

type RobId = u64;

/// MSHR waiter tokens.
///
/// ROB ids are monotone and never reused, so a squashed load's waiter is
/// recognized simply by its entry no longer existing (or no longer being
/// in `WaitMem`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Waiter {
    /// A load in the ROB.
    Load { id: RobId },
    /// The post-commit store buffer.
    StoreBuf,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum EState {
    /// In the ROB, waiting for operands / a functional unit.
    Dispatched,
    /// Occupying a functional unit until `done`.
    Executing { done: u64 },
    /// A load waiting for its MSHR reply.
    WaitMem,
    /// Result available.
    Completed,
}

#[derive(Clone, Debug)]
struct RobEntry {
    id: RobId,
    pc: u64,
    instr: DecodedInstr,
    state: EState,
    src_int: [Option<RobId>; 2],
    src_fp: [Option<RobId>; 2],
    int_result: Option<u64>,
    fp_result: Option<f64>,
    pred_taken: bool,
    pred_target: u64,
    mem_addr: Option<u64>,
    store_val: Option<u64>,
    /// Load value was forwarded from an in-flight store.
    forwarded: Option<u64>,
    mispredicted: bool,
    /// Fetch ran off the text segment; commit terminates the thread.
    bad_fetch: bool,
}

impl RobEntry {
    fn is_load(&self) -> bool {
        self.instr.is_load()
    }
    fn is_store(&self) -> bool {
        self.instr.is_store()
    }
    fn is_syscall(&self) -> bool {
        self.instr.is_syscall()
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum SbState {
    /// Needs an L1D write access (and possibly a GetM/Upgrade request).
    Need,
    /// Waiting for the directory grant.
    Waiting,
    /// Grant arrived; write at `ts`.
    Ready(u64),
}

#[derive(Clone, Copy, Debug)]
struct SbEntry {
    addr: u64,
    val: u64,
    state: SbState,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum SysState {
    Idle,
    Pending,
}

/// Fetched, predicted instruction awaiting dispatch.
#[derive(Clone, Copy, Debug)]
struct Fetched {
    pc: u64,
    instr: DecodedInstr,
    pred_taken: bool,
    pred_target: u64,
    bad_fetch: bool,
}

const N_CLASSES: usize = 13;

/// Return-address-stack depth.
const RAS_DEPTH: usize = 8;

fn class_idx(c: FuClass) -> usize {
    match c {
        FuClass::IntAlu => 0,
        FuClass::IntMul => 1,
        FuClass::IntDiv => 2,
        FuClass::FpAdd => 3,
        FuClass::FpMul => 4,
        FuClass::FpDiv => 5,
        FuClass::FpSqrt => 6,
        FuClass::Load => 7,
        FuClass::Store => 8,
        FuClass::Branch => 9,
        FuClass::Jump => 10,
        FuClass::Syscall => 11,
        FuClass::Nop => 12,
    }
}

/// The out-of-order core.
pub struct OooCpu {
    cfg: CoreConfig,
    l1_hit_lat: u64,

    pc: u64,
    regs: [u64; 32],
    fregs: [f64; 32],
    running: bool,
    finished: bool,

    int_map: [Option<RobId>; 32],
    fp_map: [Option<RobId>; 32],
    rob: VecDeque<RobEntry>,
    next_id: RobId,
    lsq_used: usize,
    fetch_q: VecDeque<Fetched>,
    bpred: super::bpred::Bimodal,

    l1i: L1Cache,
    l1d: L1Cache,
    mshr: MshrFile<Waiter>,
    ifetch: Option<(BlockAddr, Option<u64>)>,
    fetch_stall_until: u64,
    wait_jalr: bool,
    /// Return-address stack: call sites push their link, `ret` pops a
    /// predicted target so returns don't stall fetch (extension beyond
    /// the paper's NetBurst-like core; corrupted entries are corrected by
    /// the ordinary mispredict flush).
    ras: Vec<u64>,
    fu_busy_until: [u64; N_CLASSES],

    store_buffer: VecDeque<SbEntry>,
    sys_state: SysState,
    extra_stall: u64,
    pending_evictions: Vec<(ReqKind, BlockAddr)>,
    inv_while_pending: Vec<BlockAddr>,
}

impl OooCpu {
    /// Build an idle core.
    pub fn new(cfg: &TargetConfig) -> Self {
        OooCpu {
            cfg: cfg.core,
            l1_hit_lat: cfg.mem.l1_hit_lat,
            pc: 0,
            regs: [0; 32],
            fregs: [0.0; 32],
            running: false,
            finished: false,
            int_map: [None; 32],
            fp_map: [None; 32],
            rob: VecDeque::with_capacity(cfg.core.rob_entries),
            next_id: 0,
            lsq_used: 0,
            fetch_q: VecDeque::with_capacity(cfg.core.fetch_queue),
            bpred: super::bpred::Bimodal::new(cfg.core.bpred_entries),
            l1i: L1Cache::new(cfg.mem.l1i),
            l1d: L1Cache::new(cfg.mem.l1d),
            mshr: MshrFile::new(cfg.mem.mshrs),
            ifetch: None,
            fetch_stall_until: 0,
            wait_jalr: false,
            ras: Vec::with_capacity(RAS_DEPTH),
            fu_busy_until: [0; N_CLASSES],
            store_buffer: VecDeque::with_capacity(cfg.core.store_buffer),
            sys_state: SysState::Idle,
            extra_stall: 0,
            pending_evictions: Vec::new(),
            inv_while_pending: Vec::new(),
        }
    }

    // Ids are unique and monotone but NOT contiguous (flushes leave gaps,
    // since squashed ids are never reused), so lookups binary-search the
    // id-sorted ROB.
    #[inline]
    fn entry(&self, id: RobId) -> Option<&RobEntry> {
        let idx = self.rob.binary_search_by_key(&id, |e| e.id).ok()?;
        self.rob.get(idx)
    }

    #[inline]
    fn entry_mut(&mut self, id: RobId) -> Option<&mut RobEntry> {
        let idx = self.rob.binary_search_by_key(&id, |e| e.id).ok()?;
        self.rob.get_mut(idx)
    }

    fn src_ready(&self, src: Option<RobId>) -> bool {
        match src {
            None => true,
            Some(id) => match self.entry(id) {
                None => true, // producer committed to the register file
                Some(e) => e.state == EState::Completed,
            },
        }
    }

    fn int_value(&self, src: Option<RobId>, arch: Reg) -> u64 {
        match src {
            None => self.regs[arch.index()],
            Some(id) => match self.entry(id) {
                None => self.regs[arch.index()],
                Some(e) => {
                    e.int_result.unwrap_or_else(|| panic!("int producer without value: {:?}", e))
                }
            },
        }
    }

    fn fp_value(&self, src: Option<RobId>, arch: sk_isa::FReg) -> f64 {
        match src {
            None => self.fregs[arch.index()],
            Some(id) => match self.entry(id) {
                None => self.fregs[arch.index()],
                Some(e) => {
                    e.fp_result.unwrap_or_else(|| panic!("fp producer without value: {:?}", e))
                }
            },
        }
    }

    fn operands_for(&self, e: &RobEntry) -> Operands {
        for id in e.src_int.iter().chain(&e.src_fp).flatten() {
            if let Some(p) = self.entry(*id) {
                if p.state != EState::Completed {
                    panic!("consumer {e:?} reads unready producer {p:?}");
                }
            }
        }
        let [s1, s2] = e.instr.int_srcs;
        let [f1, f2] = e.instr.fp_srcs;
        Operands {
            rs1: s1.map_or(0, |r| self.int_value(e.src_int[0], r)),
            rs2: s2.map_or(0, |r| self.int_value(e.src_int[1], r)),
            fs1: f1.map_or(0.0, |f| self.fp_value(e.src_fp[0], f)),
            fs2: f2.map_or(0.0, |f| self.fp_value(e.src_fp[1], f)),
            pc: e.pc,
        }
    }

    fn note_eviction(&mut self, ev: Option<sk_mem::l1::Eviction>) {
        if let Some(e) = ev {
            self.pending_evictions.push((e.kind, e.block));
        }
    }

    fn fill_tracked(&mut self, block: BlockAddr, granted: LineState) {
        let ev = self.l1d.fill(block, granted);
        self.note_eviction(ev);
        if let Some(pos) = self.inv_while_pending.iter().position(|&b| b == block) {
            self.inv_while_pending.swap_remove(pos);
            self.l1d.apply_invalidate(block);
        }
    }

    /// Squash everything younger than `keep_id` and redirect fetch.
    fn flush_after(&mut self, keep_id: RobId, new_pc: u64, now: u64) {
        while let Some(back) = self.rob.back() {
            if back.id <= keep_id {
                break;
            }
            let e = self.rob.pop_back().unwrap();
            if e.instr.is_mem() {
                self.lsq_used -= 1;
            }
        }
        // Rebuild the rename maps from the surviving entries.
        self.int_map = [None; 32];
        self.fp_map = [None; 32];
        for e in &self.rob {
            if let Some(rd) = e.instr.int_dst {
                if rd.index() != 0 {
                    self.int_map[rd.index()] = Some(e.id);
                }
            }
            if let Some(fd) = e.instr.fp_dst {
                self.fp_map[fd.index()] = Some(e.id);
            }
        }
        self.fetch_q.clear();
        self.pc = new_pc;
        self.fetch_stall_until = now + self.cfg.mispredict_penalty;
        self.wait_jalr = false;
        self.ifetch = None;
    }

    // ---- pipeline stages ----

    fn stage_complete(&mut self, ctx: &mut CpuCtx<'_>) {
        let now = ctx.now;
        let mut i = 0;
        while i < self.rob.len() {
            let ready = matches!(self.rob[i].state, EState::Executing { done } if done <= now);
            if !ready {
                i += 1;
                continue;
            }
            let id = self.rob[i].id;
            let ops = self.operands_for(&self.rob[i]);
            let e = &self.rob[i];

            if e.is_load() {
                let addr = e.mem_addr.expect("issued load has an address");
                let val = match e.forwarded {
                    Some(v) => v,
                    None => ctx.host.load(addr, now),
                };
                let e = &mut self.rob[i];
                if matches!(e.instr.instr, Instr::Fld { .. }) {
                    e.fp_result = Some(f64::from_bits(val));
                } else {
                    e.int_result = Some(val);
                }
                e.state = EState::Completed;
                i += 1;
                continue;
            }

            let fx = exec::execute(&self.rob[i].instr.instr, ops);
            let e = &mut self.rob[i];
            e.int_result = fx.int_result;
            e.fp_result = fx.fp_result;
            if e.is_store() {
                let m = fx.mem.expect("store produces a memory op");
                e.mem_addr = Some(m.addr);
                e.store_val = Some(m.store_val);
            }
            e.state = EState::Completed;

            if let Some(br) = fx.branch {
                let actual_target = if br.taken { br.target } else { e.pc + WORD_BYTES };
                let predicted = if e.pred_taken { e.pred_target } else { e.pc + WORD_BYTES };
                if actual_target != predicted {
                    e.mispredicted = true;
                    if e.instr.is_cond_branch() {
                        ctx.stats.mispredicts += 1;
                    }
                    self.flush_after(id, actual_target, now);
                    return; // everything younger is gone
                }
            }
            i += 1;
        }
    }

    fn stage_commit(&mut self, ctx: &mut CpuCtx<'_>) -> u64 {
        let now = ctx.now;
        let mut committed = 0;
        while committed < self.cfg.commit_width as u64 {
            let Some(head) = self.rob.front() else { break };

            if head.bad_fetch {
                // Architecturally reached a non-instruction: thread is done.
                self.finished = true;
                break;
            }

            if head.is_syscall() {
                // Serializing: wait for the store buffer to drain so the
                // syscall observes (and is observed after) all prior stores.
                if !self.store_buffer.is_empty() {
                    break;
                }
                let outcome = match self.sys_state {
                    SysState::Idle => {
                        let code = match head.instr.instr {
                            Instr::Syscall { code } => code,
                            _ => unreachable!(),
                        };
                        let args = [
                            self.regs[Reg::arg(0).index()],
                            self.regs[Reg::arg(1).index()],
                            self.regs[Reg::arg(2).index()],
                            self.regs[Reg::arg(3).index()],
                        ];
                        ctx.host.sys_start(code, args, now)
                    }
                    SysState::Pending => ctx.host.sys_poll(now),
                };
                match outcome {
                    SysOutcome::Done(ret) => {
                        if let Some(v) = ret {
                            self.regs[Reg::arg(0).index()] = v;
                        }
                        self.sys_state = SysState::Idle;
                        self.rob.pop_front();
                        committed += 1;
                        ctx.stats.committed += 1;
                    }
                    SysOutcome::Pending => {
                        self.sys_state = SysState::Pending;
                        ctx.stats.sys_retries += 1;
                    }
                    SysOutcome::Exit => {
                        self.finished = true;
                        ctx.stats.committed += 1;
                    }
                }
                break; // at most one syscall interaction per cycle
            }

            if head.state != EState::Completed {
                break;
            }

            if head.is_store() {
                if self.store_buffer.len() >= self.cfg.store_buffer {
                    break;
                }
                let addr = head.mem_addr.unwrap();
                let val = head.store_val.unwrap();
                self.store_buffer.push_back(SbEntry { addr, val, state: SbState::Need });
                ctx.stats.stores += 1;
            }
            if head.is_load() {
                ctx.stats.loads += 1;
            }
            if head.instr.is_cond_branch() {
                ctx.stats.branches += 1;
                let taken = head.mispredicted != head.pred_taken;
                let pc = head.pc;
                self.bpred.update(pc, taken);
            }

            let head = self.rob.pop_front().unwrap();
            if head.instr.is_mem() {
                self.lsq_used -= 1;
            }
            if let Some(rd) = head.instr.int_dst {
                if rd.index() != 0 {
                    self.regs[rd.index()] = head.int_result.expect("completed int result");
                    if self.int_map[rd.index()] == Some(head.id) {
                        self.int_map[rd.index()] = None;
                    }
                }
            }
            if let Some(fd) = head.instr.fp_dst {
                self.fregs[fd.index()] = head.fp_result.expect("completed fp result");
                if self.fp_map[fd.index()] == Some(head.id) {
                    self.fp_map[fd.index()] = None;
                }
            }
            committed += 1;
            ctx.stats.committed += 1;
        }
        committed
    }

    fn stage_store_buffer(&mut self, ctx: &mut CpuCtx<'_>) {
        let now = ctx.now;
        let Some(head) = self.store_buffer.front().copied() else { return };
        let block = block_of(head.addr);
        match head.state {
            SbState::Need => match self.l1d.write(block) {
                L1Outcome::Hit => {
                    ctx.host.store(head.addr, head.val, now);
                    self.store_buffer.pop_front();
                }
                outcome => {
                    let req = if outcome == L1Outcome::MissUpgrade {
                        ReqKind::Upgrade
                    } else {
                        ReqKind::GetM
                    };
                    match self.mshr.allocate(block, Waiter::StoreBuf) {
                        MshrAlloc::Primary => {
                            ctx.host.emit(OutKind::DMem { req, block });
                            self.store_buffer.front_mut().unwrap().state = SbState::Waiting;
                        }
                        MshrAlloc::Secondary => {
                            self.store_buffer.front_mut().unwrap().state = SbState::Waiting;
                        }
                        MshrAlloc::Full => {} // retry next cycle
                    }
                }
            },
            SbState::Waiting => {}
            SbState::Ready(ts) if ts <= now => {
                // The store performs at grant time even if a later
                // transaction's invalidation already landed (its timestamp
                // can precede our reply because 3-hop latencies are folded
                // into completion times): the write happened in the window
                // where this core held M. Without this, two cores writing
                // the same block can livelock, each fill annihilated by the
                // other's invalidation before its store drains.
                let _ = self.l1d.write(block); // touch LRU/state if present
                ctx.host.store(head.addr, head.val, now);
                self.store_buffer.pop_front();
            }
            SbState::Ready(_) => {}
        }
    }

    fn stage_issue(&mut self, ctx: &mut CpuCtx<'_>) {
        let now = ctx.now;
        let mut used = [0usize; N_CLASSES];
        let mut budget = self.cfg.issue_width;
        let mut idx = 0;
        while budget > 0 && idx < self.rob.len() {
            if self.rob[idx].state != EState::Dispatched
                || self.rob[idx].is_syscall()
                || self.rob[idx].bad_fetch
            {
                idx += 1;
                continue;
            }
            let class = self.rob[idx].instr.fu;
            let ci = class_idx(class);
            if used[ci] >= self.cfg.fu_count(class)
                || (!self.cfg.fu_pipelined(class) && self.fu_busy_until[ci] > now)
            {
                idx += 1;
                continue;
            }
            let e = &self.rob[idx];
            if !(self.src_ready(e.src_int[0])
                && self.src_ready(e.src_int[1])
                && self.src_ready(e.src_fp[0])
                && self.src_ready(e.src_fp[1]))
            {
                idx += 1;
                continue;
            }

            if self.rob[idx].instr.is_mem() {
                if !self.try_issue_mem(idx, now, ctx) {
                    idx += 1;
                    continue;
                }
            } else {
                let lat = self.cfg.fu_latency(class);
                self.rob[idx].state = EState::Executing { done: now + lat };
                if !self.cfg.fu_pipelined(class) {
                    self.fu_busy_until[ci] = now + lat;
                }
            }
            used[ci] += 1;
            budget -= 1;
            ctx.stats.issued += 1;
            idx += 1;
        }
    }

    /// Try to issue the memory instruction at ROB index `idx`.
    /// Returns false if it must wait (dependences, MSHRs, ordering).
    fn try_issue_mem(&mut self, idx: usize, now: u64, ctx: &mut CpuCtx<'_>) -> bool {
        let ops = self.operands_for(&self.rob[idx]);
        let fx = exec::execute(&self.rob[idx].instr.instr, ops);
        let m = fx.mem.expect("memory instruction");
        let is_store = self.rob[idx].is_store();

        if is_store {
            // Stores "execute" by recording address + value; the access
            // happens post-commit through the store buffer.
            let e = &mut self.rob[idx];
            e.mem_addr = Some(m.addr);
            e.store_val = Some(m.store_val);
            e.state = EState::Executing { done: now + 1 };
            return true;
        }

        // Loads: conservative memory ordering — all older stores must have
        // known addresses.
        let mut forward: Option<u64> = None;
        for j in (0..idx).rev() {
            let older = &self.rob[j];
            if !older.is_store() {
                continue;
            }
            match older.mem_addr {
                None => return false, // unknown older store address
                Some(a) if a == m.addr => {
                    forward = Some(older.store_val.expect("store address implies value"));
                    break;
                }
                Some(_) => {}
            }
        }
        if forward.is_none() {
            // The post-commit store buffer also forwards (youngest first).
            for sb in self.store_buffer.iter().rev() {
                if sb.addr == m.addr {
                    forward = Some(sb.val);
                    break;
                }
            }
        }

        if let Some(v) = forward {
            let e = &mut self.rob[idx];
            e.mem_addr = Some(m.addr);
            e.forwarded = Some(v);
            e.state = EState::Executing { done: now + 1 };
            return true;
        }

        let block = block_of(m.addr);
        match self.l1d.read(block) {
            L1Outcome::Hit => {
                let lat = self.l1_hit_lat;
                let e = &mut self.rob[idx];
                e.mem_addr = Some(m.addr);
                e.state = EState::Executing { done: now + lat };
                true
            }
            _ => {
                let id = self.rob[idx].id;
                match self.mshr.allocate(block, Waiter::Load { id }) {
                    MshrAlloc::Primary => {
                        ctx.host.emit(OutKind::DMem { req: ReqKind::GetS, block });
                    }
                    MshrAlloc::Secondary => {}
                    MshrAlloc::Full => return false,
                }
                let e = &mut self.rob[idx];
                e.mem_addr = Some(m.addr);
                e.state = EState::WaitMem;
                true
            }
        }
    }

    fn stage_dispatch(&mut self, ctx: &mut CpuCtx<'_>) {
        let mut budget = self.cfg.issue_width;
        while budget > 0 && self.rob.len() < self.cfg.rob_entries {
            // Serialize on syscalls: nothing dispatches past one.
            if self.rob.iter().any(|e| e.is_syscall()) {
                break;
            }
            let Some(f) = self.fetch_q.front().copied() else { break };
            if f.instr.is_mem() && self.lsq_used >= self.cfg.lsq_entries {
                break;
            }
            self.fetch_q.pop_front();

            let [s1, s2] = f.instr.int_srcs;
            let [f1, f2] = f.instr.fp_srcs;
            let src_int = [
                s1.and_then(|r| self.int_map[r.index()]),
                s2.and_then(|r| self.int_map[r.index()]),
            ];
            let src_fp =
                [f1.and_then(|r| self.fp_map[r.index()]), f2.and_then(|r| self.fp_map[r.index()])];
            let id = self.next_id;
            self.next_id += 1;
            if f.instr.is_mem() {
                self.lsq_used += 1;
            }
            if let Some(rd) = f.instr.int_dst {
                if rd.index() != 0 {
                    self.int_map[rd.index()] = Some(id);
                }
            }
            if let Some(fd) = f.instr.fp_dst {
                self.fp_map[fd.index()] = Some(id);
            }
            let state = if matches!(f.instr.instr, Instr::Nop) && !f.bad_fetch {
                EState::Completed
            } else {
                EState::Dispatched
            };
            self.rob.push_back(RobEntry {
                id,
                pc: f.pc,
                instr: f.instr,
                state,
                src_int,
                src_fp,
                int_result: None,
                fp_result: None,
                pred_taken: f.pred_taken,
                pred_target: f.pred_target,
                mem_addr: None,
                store_val: None,
                forwarded: None,
                mispredicted: false,
                bad_fetch: f.bad_fetch,
            });
            budget -= 1;
            let _ = ctx;
        }
    }

    fn stage_fetch(&mut self, ctx: &mut CpuCtx<'_>) {
        let now = ctx.now;
        if self.wait_jalr || now < self.fetch_stall_until || self.ifetch.is_some() {
            return;
        }
        let mut budget = self.cfg.fetch_width;
        while budget > 0 && self.fetch_q.len() < self.cfg.fetch_queue {
            let block = block_of(self.pc);
            match self.l1i.read(block) {
                L1Outcome::Hit => {}
                _ => {
                    ctx.host.emit(OutKind::IMem { block });
                    self.ifetch = Some((block, None));
                    return;
                }
            }
            // Predecode fast path; PCs outside the table fall back to
            // reading and decoding the word, so running off the text
            // segment still yields a bad fetch exactly as before.
            let di = ctx
                .host
                .decoded(self.pc)
                .or_else(|| decode(ctx.host.fetch_word(self.pc)).ok().map(DecodedInstr::new));
            let (instr, bad) = match di {
                Some(d) => (d, false),
                None => (DecodedInstr::new(Instr::Nop), true),
            };
            ctx.stats.fetched += 1;

            let mut pred_taken = false;
            let mut pred_target = 0;
            let mut redirect: Option<u64> = None;
            let mut stop_fetch = bad; // don't fetch past garbage
            match instr.instr {
                Instr::J { off } => {
                    pred_taken = true;
                    pred_target = exec::rel_target(self.pc, off);
                    redirect = Some(pred_target);
                }
                Instr::Jal { rd, off } => {
                    if rd == Reg::RA {
                        // A call: remember the return address.
                        if self.ras.len() == RAS_DEPTH {
                            self.ras.remove(0);
                        }
                        self.ras.push(self.pc + WORD_BYTES);
                    }
                    pred_taken = true;
                    pred_target = exec::rel_target(self.pc, off);
                    redirect = Some(pred_target);
                }
                Instr::Jalr { rd, rs1, .. } if rd == Reg::ZERO && rs1 == Reg::RA => {
                    // A return: predict through the RAS; fall back to a
                    // fetch stall when the stack is empty. A wrong pop is
                    // repaired by the normal mispredict flush at execute.
                    match self.ras.pop() {
                        Some(t) => {
                            pred_taken = true;
                            pred_target = t;
                            redirect = Some(t);
                        }
                        None => {
                            self.wait_jalr = true;
                            stop_fetch = true;
                        }
                    }
                }
                Instr::Jalr { rd, .. } => {
                    if rd == Reg::RA {
                        // Indirect call: push the link even though the
                        // target itself stalls fetch.
                        if self.ras.len() == RAS_DEPTH {
                            self.ras.remove(0);
                        }
                        self.ras.push(self.pc + WORD_BYTES);
                    }
                    // Target unknown until execute: stall fetch.
                    self.wait_jalr = true;
                    stop_fetch = true;
                }
                _ if instr.is_cond_branch() => {
                    let off = instr.rel_target.expect("conditional branches are direct");
                    let target = exec::rel_target(self.pc, off);
                    if self.bpred.predict(self.pc) {
                        pred_taken = true;
                        pred_target = target;
                        redirect = Some(target);
                    } else {
                        pred_target = target;
                    }
                }
                _ => {}
            }

            self.fetch_q.push_back(Fetched {
                pc: self.pc,
                instr,
                pred_taken,
                pred_target,
                bad_fetch: bad,
            });
            budget -= 1;
            match redirect {
                Some(t) => {
                    self.pc = t;
                    // A taken control transfer ends the fetch group.
                    break;
                }
                None => self.pc += WORD_BYTES,
            }
            if stop_fetch {
                break;
            }
        }
    }
}

impl Cpu for OooCpu {
    fn step(&mut self, ctx: &mut CpuCtx<'_>) {
        for (kind, block) in self.pending_evictions.drain(..) {
            ctx.host.emit(OutKind::DMem { req: kind, block });
        }
        if !self.running || self.finished {
            ctx.stats.idle_cycles += 1;
            return;
        }
        if self.extra_stall > 0 {
            self.extra_stall -= 1;
            ctx.stats.ff_stall_cycles += 1;
            return;
        }
        self.stage_complete(ctx);
        let committed = self.stage_commit(ctx);
        if committed == 0 && !self.finished {
            ctx.stats.stall_cycles += 1;
        }
        if self.finished {
            return;
        }
        self.stage_store_buffer(ctx);
        self.stage_issue(ctx);
        self.stage_dispatch(ctx);
        self.stage_fetch(ctx);
    }

    fn start_thread(&mut self, entry: u64, arg: u64, tid: u32) {
        self.pc = entry;
        self.regs = [0; 32];
        self.fregs = [0.0; 32];
        self.regs[Reg::arg(0).index()] = arg;
        self.regs[Reg::TP.index()] = tid as u64;
        self.regs[Reg::SP.index()] = layout::stack_top(tid as usize);
        self.regs[Reg::GP.index()] = layout::DATA_BASE;
        self.running = true;
    }

    fn running(&self) -> bool {
        self.running
    }

    fn finished(&self) -> bool {
        self.finished
    }

    fn mem_reply(&mut self, block: BlockAddr, granted: LineState, ts: u64) {
        self.fill_tracked(block, granted);
        for w in self.mshr.complete(block) {
            match w {
                Waiter::Load { id } => {
                    // Squashed loads simply no longer exist (ids are never
                    // reused), so surviving-but-flushed-epoch loads still
                    // get their wakeup.
                    if let Some(entry) = self.entry_mut(id) {
                        if entry.state == EState::WaitMem {
                            entry.state = EState::Executing { done: ts };
                        }
                    }
                }
                Waiter::StoreBuf => {
                    for sb in self.store_buffer.iter_mut() {
                        if block_of(sb.addr) == block && sb.state == SbState::Waiting {
                            sb.state = SbState::Ready(ts);
                        }
                    }
                }
            }
        }
    }

    fn imem_reply(&mut self, block: BlockAddr, ts: u64) {
        self.l1i.fill(block, LineState::Shared);
        if let Some((b, _)) = self.ifetch {
            if b == block {
                // Fetch resumes once the fill's timestamp has passed.
                self.fetch_stall_until = self.fetch_stall_until.max(ts);
                self.ifetch = None;
            }
        }
    }

    fn invalidate(&mut self, block: BlockAddr, downgrade: bool) {
        if downgrade {
            self.l1d.apply_downgrade(block);
            return;
        }
        if self.mshr.contains(block) {
            self.inv_while_pending.push(block);
        }
        self.l1d.apply_invalidate(block);
        self.l1i.apply_invalidate(block);
    }

    fn add_stall(&mut self, cycles: u64) {
        self.extra_stall += cycles;
    }

    fn flush_cache_stats(&self, stats: &mut CoreStats) {
        stats.l1d = self.l1d.stats();
        stats.l1i = self.l1i.stats();
    }

    fn quiesced(&self) -> bool {
        self.rob.is_empty()
            && self.store_buffer.is_empty()
            && self.fetch_q.is_empty()
            && self.mshr.is_empty()
    }

    fn save_state(&self, w: &mut Writer) {
        w.put_u64(self.pc);
        for &r in &self.regs {
            w.put_u64(r);
        }
        for &f in &self.fregs {
            w.put_f64(f);
        }
        w.put_bool(self.running);
        w.put_bool(self.finished);
        for m in self.int_map.iter().chain(&self.fp_map) {
            m.save(w);
        }
        w.put_usize(self.rob.len());
        for e in &self.rob {
            e.save(w);
        }
        w.put_u64(self.next_id);
        w.put_usize(self.lsq_used);
        w.put_usize(self.fetch_q.len());
        for f in &self.fetch_q {
            f.save(w);
        }
        self.bpred.save(w);
        self.l1i.save(w);
        self.l1d.save(w);
        self.mshr.save(w);
        self.ifetch.save(w);
        w.put_u64(self.fetch_stall_until);
        w.put_bool(self.wait_jalr);
        self.ras.save(w);
        for &b in &self.fu_busy_until {
            w.put_u64(b);
        }
        w.put_usize(self.store_buffer.len());
        for sb in &self.store_buffer {
            sb.save(w);
        }
        self.sys_state.save(w);
        w.put_u64(self.extra_stall);
        w.put_usize(self.pending_evictions.len());
        for &(kind, block) in &self.pending_evictions {
            kind.save(w);
            w.put_u64(block);
        }
        self.inv_while_pending.save(w);
    }

    fn restore_state(&mut self, r: &mut Reader<'_>) -> Result<(), SnapError> {
        self.pc = r.get_u64()?;
        for reg in self.regs.iter_mut() {
            *reg = r.get_u64()?;
        }
        for f in self.fregs.iter_mut() {
            *f = r.get_f64()?;
        }
        self.running = r.get_bool()?;
        self.finished = r.get_bool()?;
        for m in self.int_map.iter_mut().chain(self.fp_map.iter_mut()) {
            *m = Option::load(r)?;
        }
        let n = r.get_count(16)?;
        self.rob.clear();
        for _ in 0..n {
            self.rob.push_back(RobEntry::load(r)?);
        }
        // Lookups binary-search the id-sorted ROB; reject anything that
        // breaks the invariant instead of silently misbehaving later.
        if self.rob.iter().zip(self.rob.iter().skip(1)).any(|(a, b)| a.id >= b.id) {
            return Err(SnapError::Corrupt("ROB ids not strictly increasing".into()));
        }
        self.next_id = r.get_u64()?;
        if let Some(back) = self.rob.back() {
            if back.id >= self.next_id {
                return Err(SnapError::Corrupt("next ROB id not past the youngest entry".into()));
            }
        }
        self.lsq_used = r.get_usize()?;
        let n = r.get_count(16)?;
        self.fetch_q.clear();
        for _ in 0..n {
            self.fetch_q.push_back(Fetched::load(r)?);
        }
        self.bpred = super::bpred::Bimodal::load(r)?;
        self.l1i = L1Cache::load(r)?;
        self.l1d = L1Cache::load(r)?;
        self.mshr = MshrFile::load(r)?;
        self.ifetch = Option::load(r)?;
        self.fetch_stall_until = r.get_u64()?;
        self.wait_jalr = r.get_bool()?;
        self.ras = Vec::load(r)?;
        for b in self.fu_busy_until.iter_mut() {
            *b = r.get_u64()?;
        }
        let n = r.get_count(16)?;
        self.store_buffer.clear();
        for _ in 0..n {
            self.store_buffer.push_back(SbEntry::load(r)?);
        }
        self.sys_state = SysState::load(r)?;
        self.extra_stall = r.get_u64()?;
        let n = r.get_count(9)?;
        self.pending_evictions.clear();
        for _ in 0..n {
            self.pending_evictions.push((ReqKind::load(r)?, r.get_u64()?));
        }
        self.inv_while_pending = Vec::load(r)?;
        Ok(())
    }

    fn debug_state(&self) -> String {
        format!(
            "pc={:#x} rob[{}] head={:?} sb={:?} mshr=[{}] ifetch={:?} wait_jalr={} sys={:?} fq={}",
            self.pc,
            self.rob.len(),
            self.rob.front().map(|e| (e.id, e.instr.instr, e.state)),
            self.store_buffer
                .iter()
                .map(|e| (sk_mem::block_of(e.addr), e.state))
                .collect::<Vec<_>>(),
            self.mshr.iter().map(|(b, w)| format!("{b}:{w:?}")).collect::<Vec<_>>().join(","),
            self.ifetch,
            self.wait_jalr,
            self.sys_state,
            self.fetch_q.len(),
        )
    }
}

// Instructions round-trip through the ISA's canonical 64-bit encoding, so
// the snapshot format stays stable against `Instr` layout changes.
fn save_instr(i: &Instr, w: &mut Writer) {
    w.put_u64(encode(i));
}

fn load_instr(r: &mut Reader<'_>) -> Result<Instr, SnapError> {
    let word = r.get_u64()?;
    decode(word).map_err(|e| SnapError::Corrupt(format!("instr word {word:#x}: {e:?}")))
}

impl Persist for Waiter {
    fn save(&self, w: &mut Writer) {
        match *self {
            Waiter::Load { id } => {
                w.put_u8(0);
                w.put_u64(id);
            }
            Waiter::StoreBuf => w.put_u8(1),
        }
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        match r.get_u8()? {
            0 => Ok(Waiter::Load { id: r.get_u64()? }),
            1 => Ok(Waiter::StoreBuf),
            t => Err(SnapError::Corrupt(format!("mshr waiter tag {t}"))),
        }
    }
}

impl Persist for EState {
    fn save(&self, w: &mut Writer) {
        match *self {
            EState::Dispatched => w.put_u8(0),
            EState::Executing { done } => {
                w.put_u8(1);
                w.put_u64(done);
            }
            EState::WaitMem => w.put_u8(2),
            EState::Completed => w.put_u8(3),
        }
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        Ok(match r.get_u8()? {
            0 => EState::Dispatched,
            1 => EState::Executing { done: r.get_u64()? },
            2 => EState::WaitMem,
            3 => EState::Completed,
            t => return Err(SnapError::Corrupt(format!("rob state tag {t}"))),
        })
    }
}

impl Persist for RobEntry {
    fn save(&self, w: &mut Writer) {
        w.put_u64(self.id);
        w.put_u64(self.pc);
        save_instr(&self.instr.instr, w);
        self.state.save(w);
        for s in self.src_int.iter().chain(&self.src_fp) {
            s.save(w);
        }
        self.int_result.save(w);
        self.fp_result.save(w);
        w.put_bool(self.pred_taken);
        w.put_u64(self.pred_target);
        self.mem_addr.save(w);
        self.store_val.save(w);
        self.forwarded.save(w);
        w.put_bool(self.mispredicted);
        w.put_bool(self.bad_fetch);
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        Ok(RobEntry {
            id: r.get_u64()?,
            pc: r.get_u64()?,
            instr: DecodedInstr::new(load_instr(r)?),
            state: EState::load(r)?,
            src_int: [Option::load(r)?, Option::load(r)?],
            src_fp: [Option::load(r)?, Option::load(r)?],
            int_result: Option::load(r)?,
            fp_result: Option::load(r)?,
            pred_taken: r.get_bool()?,
            pred_target: r.get_u64()?,
            mem_addr: Option::load(r)?,
            store_val: Option::load(r)?,
            forwarded: Option::load(r)?,
            mispredicted: r.get_bool()?,
            bad_fetch: r.get_bool()?,
        })
    }
}

impl Persist for SbState {
    fn save(&self, w: &mut Writer) {
        match *self {
            SbState::Need => w.put_u8(0),
            SbState::Waiting => w.put_u8(1),
            SbState::Ready(ts) => {
                w.put_u8(2);
                w.put_u64(ts);
            }
        }
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        Ok(match r.get_u8()? {
            0 => SbState::Need,
            1 => SbState::Waiting,
            2 => SbState::Ready(r.get_u64()?),
            t => return Err(SnapError::Corrupt(format!("store-buffer state tag {t}"))),
        })
    }
}

impl Persist for SbEntry {
    fn save(&self, w: &mut Writer) {
        w.put_u64(self.addr);
        w.put_u64(self.val);
        self.state.save(w);
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        Ok(SbEntry { addr: r.get_u64()?, val: r.get_u64()?, state: SbState::load(r)? })
    }
}

impl Persist for SysState {
    fn save(&self, w: &mut Writer) {
        w.put_u8(match self {
            SysState::Idle => 0,
            SysState::Pending => 1,
        });
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        match r.get_u8()? {
            0 => Ok(SysState::Idle),
            1 => Ok(SysState::Pending),
            t => Err(SnapError::Corrupt(format!("sys state tag {t}"))),
        }
    }
}

impl Persist for Fetched {
    fn save(&self, w: &mut Writer) {
        w.put_u64(self.pc);
        save_instr(&self.instr.instr, w);
        w.put_bool(self.pred_taken);
        w.put_u64(self.pred_target);
        w.put_bool(self.bad_fetch);
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        Ok(Fetched {
            pc: r.get_u64()?,
            instr: DecodedInstr::new(load_instr(r)?),
            pred_taken: r.get_bool()?,
            pred_target: r.get_u64()?,
            bad_fetch: r.get_bool()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::tests_support::run_to_exit;
    use sk_isa::{FReg, ProgramBuilder, Syscall};

    fn ooo(cfg: &TargetConfig) -> Box<dyn Cpu> {
        let mut c = *cfg;
        c.core = crate::config::CoreConfig::paper_ooo();
        Box::new(OooCpu::new(&c))
    }

    #[test]
    fn straight_line_arithmetic() {
        let mut b = ProgramBuilder::new();
        b.li(Reg::tmp(0), 6);
        b.li(Reg::tmp(1), 7);
        b.mul(Reg::arg(0), Reg::tmp(0), Reg::tmp(1));
        b.sys(Syscall::PrintInt);
        b.sys(Syscall::Exit);
        let p = b.build().unwrap();
        let (host, stats) = run_to_exit(ooo, &p, 10_000);
        assert_eq!(host.printed, vec![42]);
        assert_eq!(stats.committed, 5);
    }

    #[test]
    fn dependent_chain_respects_dataflow() {
        // r = ((((1+1)+1)...)+1) 20 times; any renaming bug corrupts it.
        let mut b = ProgramBuilder::new();
        b.li(Reg::arg(0), 1);
        for _ in 0..20 {
            b.addi(Reg::arg(0), Reg::arg(0), 1);
        }
        b.sys(Syscall::PrintInt);
        b.sys(Syscall::Exit);
        let p = b.build().unwrap();
        let (host, _) = run_to_exit(ooo, &p, 10_000);
        assert_eq!(host.printed, vec![21]);
    }

    #[test]
    fn loop_with_branches() {
        let mut b = ProgramBuilder::new();
        b.li(Reg::tmp(0), 100);
        b.li(Reg::arg(0), 0);
        let top = b.here("top");
        b.add(Reg::arg(0), Reg::arg(0), Reg::tmp(0));
        b.addi(Reg::tmp(0), Reg::tmp(0), -1);
        b.bne(Reg::tmp(0), Reg::ZERO, top);
        b.sys(Syscall::PrintInt);
        b.sys(Syscall::Exit);
        let p = b.build().unwrap();
        let (host, stats) = run_to_exit(ooo, &p, 50_000);
        assert_eq!(host.printed, vec![5050]);
        assert_eq!(stats.branches, 100);
        // The predictor learns the loop after a couple of iterations.
        assert!(stats.mispredicts < 10, "mispredicts = {}", stats.mispredicts);
    }

    #[test]
    fn wrong_path_work_is_squashed() {
        // A data-dependent unpredictable branch alternates each iteration.
        let mut b = ProgramBuilder::new();
        b.li(Reg::tmp(0), 50);
        b.li(Reg::arg(0), 0);
        b.li(Reg::tmp(1), 0); // parity
        let top = b.here("top");
        let skip = b.new_label("skip");
        b.andi(Reg::tmp(2), Reg::tmp(0), 1);
        b.beq(Reg::tmp(2), Reg::ZERO, skip);
        b.addi(Reg::arg(0), Reg::arg(0), 1); // odd iterations only
        b.bind(skip);
        b.addi(Reg::tmp(0), Reg::tmp(0), -1);
        b.bne(Reg::tmp(0), Reg::ZERO, top);
        b.sys(Syscall::PrintInt);
        b.sys(Syscall::Exit);
        let p = b.build().unwrap();
        let (host, stats) = run_to_exit(ooo, &p, 50_000);
        assert_eq!(host.printed, vec![25]);
        assert!(stats.fetched > stats.committed, "speculation fetches extra work");
    }

    #[test]
    fn store_to_load_forwarding() {
        let mut b = ProgramBuilder::new();
        let buf = b.zeros("buf", 1);
        b.li(Reg::tmp(2), buf as i64);
        b.li(Reg::tmp(0), 777);
        b.st(Reg::tmp(0), Reg::tmp(2), 0);
        b.ld(Reg::arg(0), Reg::tmp(2), 0); // must see 777 via forwarding
        b.sys(Syscall::PrintInt);
        b.sys(Syscall::Exit);
        let p = b.build().unwrap();
        let (host, _) = run_to_exit(ooo, &p, 10_000);
        assert_eq!(host.printed, vec![777]);
    }

    #[test]
    fn memory_results_round_trip() {
        let mut b = ProgramBuilder::new();
        let buf = b.zeros("buf", 8);
        b.li(Reg::tmp(2), buf as i64);
        for i in 0..8 {
            b.li(Reg::tmp(0), (i * i) as i64);
            b.st(Reg::tmp(0), Reg::tmp(2), i * 8);
        }
        b.li(Reg::arg(0), 0);
        for i in 0..8 {
            b.ld(Reg::tmp(1), Reg::tmp(2), i * 8);
            b.add(Reg::arg(0), Reg::arg(0), Reg::tmp(1));
        }
        b.sys(Syscall::PrintInt);
        b.sys(Syscall::Exit);
        let p = b.build().unwrap();
        let (host, stats) = run_to_exit(ooo, &p, 50_000);
        assert_eq!(host.printed, vec![(0..8).map(|i| i * i).sum::<i64>()]);
        assert_eq!(stats.stores, 8);
        assert_eq!(stats.loads, 8);
    }

    #[test]
    fn fp_dataflow() {
        let mut b = ProgramBuilder::new();
        let c = b.floats("c", &[3.0, 4.0]);
        b.li(Reg::tmp(2), c as i64);
        b.fld(FReg::new(1), Reg::tmp(2), 0);
        b.fld(FReg::new(2), Reg::tmp(2), 8);
        b.fmul(FReg::new(1), FReg::new(1), FReg::new(1)); // 9
        b.fmul(FReg::new(2), FReg::new(2), FReg::new(2)); // 16
        b.fadd(FReg::new(3), FReg::new(1), FReg::new(2)); // 25
        b.fsqrt(FReg::new(3), FReg::new(3)); // 5
        b.emit(Instr::Fcvtfl { rd: Reg::arg(0), fs1: FReg::new(3) });
        b.sys(Syscall::PrintInt);
        b.sys(Syscall::Exit);
        let p = b.build().unwrap();
        let (host, _) = run_to_exit(ooo, &p, 10_000);
        assert_eq!(host.printed, vec![5]);
    }

    #[test]
    fn function_calls_through_jalr() {
        let mut b = ProgramBuilder::new();
        let main = b.new_label("main");
        let double = b.new_label("double");
        b.entry(main);
        b.bind(double);
        b.add(Reg::arg(0), Reg::arg(0), Reg::arg(0));
        b.ret();
        b.bind(main);
        b.li(Reg::arg(0), 21);
        b.call(double);
        b.sys(Syscall::PrintInt);
        b.sys(Syscall::Exit);
        let p = b.build().unwrap();
        let (host, _) = run_to_exit(ooo, &p, 10_000);
        assert_eq!(host.printed, vec![42]);
    }

    /// A loop whose body is 8 independent adds (high ILP, warm I-cache).
    fn ilp_loop(iters: i64) -> sk_isa::Program {
        let mut b = ProgramBuilder::new();
        for i in 0..8 {
            b.li(Reg::saved(i), 1);
        }
        b.li(Reg::tmp(0), iters);
        let top = b.here("top");
        for i in 0..8 {
            b.addi(Reg::saved(i), Reg::saved(i), 1);
        }
        b.addi(Reg::tmp(0), Reg::tmp(0), -1);
        b.bne(Reg::tmp(0), Reg::ZERO, top);
        b.sys(Syscall::Exit);
        b.build().unwrap()
    }

    #[test]
    fn ooo_is_faster_than_inorder_on_ilp() {
        let (_, ooo_stats) = run_to_exit(ooo, &ilp_loop(200), 100_000);
        let (_, io_stats) = run_to_exit(
            |cfg| Box::new(crate::cpu::inorder::InOrderCpu::new(cfg)) as Box<dyn Cpu>,
            &ilp_loop(200),
            100_000,
        );
        assert!(
            ooo_stats.cycles * 2 < io_stats.cycles,
            "OoO {} cycles vs in-order {} cycles",
            ooo_stats.cycles,
            io_stats.cycles
        );
    }

    #[test]
    fn ilp_ipc_exceeds_one() {
        let (_, stats) = run_to_exit(ooo, &ilp_loop(200), 100_000);
        assert!(stats.ipc() > 1.2, "ipc = {}", stats.ipc());
    }

    #[test]
    fn returns_are_predicted_through_the_ras() {
        // A tight call loop: with the RAS, returns should not stall fetch,
        // so the loop runs much faster than one call per ~10 cycles.
        let mut b = ProgramBuilder::new();
        let main = b.new_label("main");
        let f = b.new_label("f");
        b.entry(main);
        b.bind(f);
        b.addi(Reg::arg(0), Reg::arg(0), 1);
        b.ret();
        b.bind(main);
        b.li(Reg::arg(0), 0);
        b.li(Reg::tmp(0), 100);
        let top = b.here("top");
        b.call(f);
        b.addi(Reg::tmp(0), Reg::tmp(0), -1);
        b.bne(Reg::tmp(0), Reg::ZERO, top);
        b.sys(Syscall::PrintInt);
        b.sys(Syscall::Exit);
        let p = b.build().unwrap();
        let (host, stats) = run_to_exit(ooo, &p, 50_000);
        assert_eq!(host.printed, vec![100]);
        // 100 iterations x 4 instructions + overhead: with predicted
        // returns this takes ~2-4 cycles/iteration; a stalling return
        // would cost >= 7 cycles/iteration.
        assert!(stats.cycles < 600, "cycles = {} (RAS not effective?)", stats.cycles);
    }

    #[test]
    fn unpipelined_divides_serialize_on_their_unit() {
        // Two independent divides must serialize (1 unpipelined divider);
        // two independent multiplies pipeline back to back.
        let mk = |div: bool| {
            let mut b = ProgramBuilder::new();
            b.li(Reg::tmp(0), 1000);
            b.li(Reg::tmp(1), 7);
            for i in 0..6 {
                if div {
                    b.div(Reg::saved(i), Reg::tmp(0), Reg::tmp(1));
                } else {
                    b.mul(Reg::saved(i), Reg::tmp(0), Reg::tmp(1));
                }
            }
            b.sys(Syscall::Exit);
            b.build().unwrap()
        };
        let (_, div_stats) = run_to_exit(ooo, &mk(true), 10_000);
        let (_, mul_stats) = run_to_exit(ooo, &mk(false), 10_000);
        // 6 divides at 20 cycles unpipelined >= 120 cycles; 6 pipelined
        // multiplies complete in a small fraction of that.
        assert!(
            div_stats.cycles > mul_stats.cycles + 80,
            "div {} vs mul {}",
            div_stats.cycles,
            mul_stats.cycles
        );
    }

    #[test]
    fn rename_map_survives_a_flush() {
        // A mispredicted branch flushes younger instructions; values
        // produced before the branch must still reach consumers dispatched
        // after the recovery (exercises the map rebuild).
        let mut b = ProgramBuilder::new();
        b.li(Reg::saved(0), 17); // produced before the branch
        b.li(Reg::tmp(0), 1);
        let skip = b.new_label("skip");
        // Data-dependent branch the bimodal cannot know yet: taken.
        b.bne(Reg::tmp(0), Reg::ZERO, skip);
        b.li(Reg::saved(0), 999); // wrong path
        b.bind(skip);
        b.addi(Reg::arg(0), Reg::saved(0), 5); // must read 17
        b.sys(Syscall::PrintInt);
        b.sys(Syscall::Exit);
        let p = b.build().unwrap();
        let (host, _) = run_to_exit(ooo, &p, 10_000);
        assert_eq!(host.printed, vec![22]);
    }

    #[test]
    fn store_buffer_drains_in_order() {
        // More committed stores than store-buffer slots: all must land,
        // later loads must see the final values.
        let mut b = ProgramBuilder::new();
        let buf = b.zeros("buf", 16);
        b.li(Reg::tmp(2), buf as i64);
        for round in 0..2 {
            for i in 0..16 {
                b.li(Reg::tmp(0), (round * 100 + i) as i64);
                b.st(Reg::tmp(0), Reg::tmp(2), i * 8);
            }
        }
        b.li(Reg::arg(0), 0);
        for i in 0..16 {
            b.ld(Reg::tmp(1), Reg::tmp(2), i * 8);
            b.add(Reg::arg(0), Reg::arg(0), Reg::tmp(1));
        }
        b.sys(Syscall::PrintInt);
        b.sys(Syscall::Exit);
        let p = b.build().unwrap();
        let (host, _) = run_to_exit(ooo, &p, 50_000);
        let expected: i64 = (0..16).map(|i| 100 + i).sum();
        assert_eq!(host.printed, vec![expected]);
    }

    #[test]
    fn runaway_pc_terminates() {
        let mut b = ProgramBuilder::new();
        b.nop();
        let p = b.build().unwrap();
        let (_, _) = run_to_exit(ooo, &p, 10_000);
    }
}
