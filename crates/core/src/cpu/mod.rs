//! Core timing models.
//!
//! Two interchangeable models implement [`Cpu`]:
//!
//! * [`ooo::OooCpu`] — the paper's 4-way out-of-order, 64-in-flight,
//!   NetBurst-like core (§2.2, §4.1), with bimodal branch prediction, a
//!   load/store queue with forwarding, non-blocking L1D through MSHRs and a
//!   post-commit store buffer;
//! * [`inorder::InOrderCpu`] — a single-issue core that stalls on misses.
//!
//! A model interacts with the world only through [`CoreHost`], implemented
//! by the core thread (`crate::core_thread`): functional memory accesses
//! (timestamped, so violation tracking sees them), OutQ event emission, and
//! the syscall protocol. Incoming InQ messages are applied by the core
//! thread through the `Cpu` trait's reply methods.

pub mod bpred;
pub mod inorder;
pub mod ooo;

use crate::stats::CoreStats;
use sk_mem::{BlockAddr, LineState};
use sk_snap::{Reader, SnapError, Writer};

/// Disposition of a syscall, as decided by the host.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SysOutcome {
    /// Completed; optionally write a return value to `a0`.
    Done(Option<u64>),
    /// In flight (sync reply pending or spin-wait); poll again next cycle.
    Pending,
    /// The workload thread exits.
    Exit,
}

/// Services the core thread provides to its CPU model.
pub trait CoreHost {
    /// Functional load of one word at simulated time `ts`.
    fn load(&mut self, addr: u64, ts: u64) -> u64;
    /// Functional store of one word at simulated time `ts`.
    fn store(&mut self, addr: u64, val: u64, ts: u64);
    /// Read an instruction word (not violation-tracked: text is immutable).
    fn fetch_word(&mut self, addr: u64) -> u64;
    /// Predecoded instruction at `pc`, when the host carries a predecode
    /// table covering it. `None` sends the model down the
    /// `fetch_word` + `decode` path, which keeps runaway-PC / bad-fetch
    /// semantics identical for PCs outside the text segment.
    fn decoded(&mut self, pc: u64) -> Option<sk_isa::DecodedInstr> {
        let _ = pc;
        None
    }
    /// Emit an OutQ event (the host stamps timestamp and sequence).
    fn emit(&mut self, kind: crate::msg::OutKind);
    /// A syscall reached the commit point. `args` are `a0..a3`.
    fn sys_start(&mut self, code: u16, args: [u64; 4], now: u64) -> SysOutcome;
    /// Poll a pending syscall.
    fn sys_poll(&mut self, now: u64) -> SysOutcome;
}

/// Superblock dispatch telemetry, accumulated by a [`Cpu`] model and
/// drained into `sk-obs` by the core thread once per batch. Purely
/// observational: none of these counts feed back into timing or into
/// [`CoreStats`] (which must stay bit-identical with superblocks off).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SbEvents {
    /// Run ended on its anchoring control-flow instruction.
    pub exit_branch: u64,
    /// Run cancelled because the core left the Ready phase (L1 miss,
    /// I-fetch miss, or any stall that parks the pipeline mid-run).
    pub exit_miss: u64,
    /// Run ended at a syscall that went Pending (sync / spin-wait).
    pub exit_sync: u64,
    /// Run ended at a syscall that completed immediately.
    pub exit_syscall: u64,
    /// Run split at the slack-window edge (budget exhausted mid-run);
    /// the run resumes in the next batch, so nothing is cancelled.
    pub exit_window: u64,
    /// Run ended by falling back to live decode (off-table pc, refused
    /// instruction, or bad fetch).
    pub exit_fallback: u64,
    /// Histogram of dynamic run lengths: `len_counts[n]` counts runs
    /// that retired `n` uops before exiting (index 0 collects runs cut
    /// before their first uop; the last bucket clamps longer runs).
    pub len_counts: [u64; 65],
}

impl Default for SbEvents {
    fn default() -> Self {
        SbEvents {
            exit_branch: 0,
            exit_miss: 0,
            exit_sync: 0,
            exit_syscall: 0,
            exit_window: 0,
            exit_fallback: 0,
            len_counts: [0; 65],
        }
    }
}

impl SbEvents {
    /// Record a completed (or cancelled) run of dynamic length `len`.
    pub fn record_len(&mut self, len: u16) {
        self.len_counts[(len as usize).min(64)] += 1;
    }

    /// True when nothing has been recorded since the last [`Self::clear`].
    pub fn is_empty(&self) -> bool {
        self == &SbEvents::default()
    }

    /// Reset all counters (after the core thread drained them).
    pub fn clear(&mut self) {
        *self = SbEvents::default();
    }
}

/// Per-cycle context handed to [`Cpu::step`].
pub struct CpuCtx<'a> {
    /// The cycle being simulated (local time + 1).
    pub now: u64,
    /// Host services.
    pub host: &'a mut dyn CoreHost,
    /// Statistics sink.
    pub stats: &'a mut CoreStats,
}

/// A core timing model.
pub trait Cpu: Send {
    /// Simulate one cycle.
    fn step(&mut self, ctx: &mut CpuCtx<'_>);

    /// Begin executing a workload thread.
    fn start_thread(&mut self, entry: u64, arg: u64, tid: u32);

    /// Has a thread been started on this core?
    fn running(&self) -> bool;

    /// Did the workload thread exit?
    fn finished(&self) -> bool;

    /// A data-cache miss reply: install `block` as `granted` effective at
    /// simulated time `ts` (already clamped to ≥ local by the caller).
    fn mem_reply(&mut self, block: BlockAddr, granted: LineState, ts: u64);

    /// An instruction-cache miss reply.
    fn imem_reply(&mut self, block: BlockAddr, ts: u64);

    /// An incoming invalidation (`downgrade` = keep a Shared copy).
    fn invalidate(&mut self, block: BlockAddr, downgrade: bool);

    /// Extra idle cycles to absorb (fast-forward compensation).
    fn add_stall(&mut self, cycles: u64);

    /// Copy cache counters into `stats` (called once at end of run).
    fn flush_cache_stats(&self, stats: &mut CoreStats);

    /// Is the pipeline completely drained (used by tests)?
    fn quiesced(&self) -> bool;

    /// Serialize all dynamic state (registers, pipeline, caches, MSHRs) to
    /// `w`. Static configuration is *not* written: a restored CPU is first
    /// constructed from the snapshot's [`crate::TargetConfig`], then
    /// [`Cpu::restore_state`] overwrites its dynamic state. The pipeline
    /// need not be drained — in-flight ROB entries, MSHRs and store buffers
    /// round-trip exactly.
    fn save_state(&self, w: &mut Writer);

    /// Restore dynamic state previously written by [`Cpu::save_state`] on
    /// a CPU constructed with the same configuration. Returns an error
    /// (never panics) on corrupt input.
    fn restore_state(&mut self, r: &mut Reader<'_>) -> Result<(), SnapError>;

    /// One-line diagnostic of the pipeline state (for stall debugging).
    fn debug_state(&self) -> String {
        String::new()
    }

    /// Hand the model a superblock table for its fused fast path. Models
    /// without one (the out-of-order core simulates real fetch/issue and
    /// gains nothing from fusion) ignore it.
    fn attach_superblocks(&mut self, table: std::sync::Arc<sk_isa::SuperblockTable>) {
        let _ = table;
    }

    /// Superblock telemetry accumulated since the last drain, if this
    /// model dispatches through superblocks.
    fn sb_events(&mut self) -> Option<&mut SbEvents> {
        None
    }

    /// Is a fused run currently suspended mid-block (so a batch boundary
    /// here is a window split, not a natural exit)?
    fn sb_mid_run(&self) -> bool {
        false
    }
}

/// Host-work units contributed by one simulated cycle, used by the
/// virtual-host trace (rough proxy: how much host CPU this cycle costs).
pub fn cycle_work(committed: u64, issued: u64, fetched: u64, events: u64) -> u16 {
    // Base cost of ticking the pipeline + per-activity increments. The
    // absolute scale is arbitrary; the virtual host only uses ratios.
    let w = 2 + committed * 2 + issued + fetched + events * 6;
    w.min(u16::MAX as u64) as u16
}

#[cfg(test)]
pub(crate) mod tests_support {
    //! A minimal single-core harness: fixed-latency memory replies, no
    //! manager thread, print/exit syscalls only. Used by the CPU models'
    //! unit tests; full-system behaviour is tested through the engine.

    use super::*;
    use crate::config::TargetConfig;
    use crate::msg::OutKind;
    use sk_isa::{Program, Syscall};
    use sk_mem::l1::ReqKind;
    use sk_mem::FuncMemory;
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    /// Pending reply to deliver to the CPU at a future cycle.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum Reply {
        DMem { block: BlockAddr, granted: LineState },
        IMem { block: BlockAddr },
    }

    pub struct TestHost {
        pub mem: FuncMemory,
        pub printed: Vec<i64>,
        pub queued: BinaryHeap<Reverse<(u64, u64, ReplyBox)>>,
        pub seq: u64,
        pub mem_latency: u64,
        pub now: u64,
    }

    // BinaryHeap needs Ord; wrap Reply.
    #[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
    pub struct ReplyBox(pub u64, pub u8); // (block, kind+granted tag)

    impl ReplyBox {
        fn pack(r: Reply) -> Self {
            match r {
                Reply::DMem { block, granted } => ReplyBox(
                    block,
                    match granted {
                        LineState::Shared => 0,
                        LineState::Exclusive => 1,
                        LineState::Modified => 2,
                    },
                ),
                Reply::IMem { block } => ReplyBox(block, 3),
            }
        }
        fn unpack(self) -> Reply {
            match self.1 {
                0 => Reply::DMem { block: self.0, granted: LineState::Shared },
                1 => Reply::DMem { block: self.0, granted: LineState::Exclusive },
                2 => Reply::DMem { block: self.0, granted: LineState::Modified },
                _ => Reply::IMem { block: self.0 },
            }
        }
    }

    impl CoreHost for TestHost {
        fn load(&mut self, addr: u64, _ts: u64) -> u64 {
            self.mem.read(addr)
        }
        fn store(&mut self, addr: u64, val: u64, _ts: u64) {
            self.mem.write(addr, val);
        }
        fn fetch_word(&mut self, addr: u64) -> u64 {
            self.mem.read(addr)
        }
        fn emit(&mut self, kind: OutKind) {
            let reply = match kind {
                OutKind::DMem { req, block } => match req {
                    ReqKind::GetS => Some(Reply::DMem { block, granted: LineState::Exclusive }),
                    ReqKind::GetM | ReqKind::Upgrade => {
                        Some(Reply::DMem { block, granted: LineState::Modified })
                    }
                    ReqKind::PutS | ReqKind::PutM => None,
                },
                OutKind::IMem { block } => Some(Reply::IMem { block }),
                _ => None,
            };
            if let Some(r) = reply {
                self.seq += 1;
                self.queued.push(Reverse((
                    self.now + self.mem_latency,
                    self.seq,
                    ReplyBox::pack(r),
                )));
            }
        }
        fn sys_start(&mut self, code: u16, args: [u64; 4], now: u64) -> SysOutcome {
            match Syscall::from_code(code) {
                Some(Syscall::Exit) => SysOutcome::Exit,
                Some(Syscall::PrintInt) => {
                    self.printed.push(args[0] as i64);
                    SysOutcome::Done(None)
                }
                Some(Syscall::PrintFloat) => {
                    self.printed.push(f64::from_bits(args[0]) as i64);
                    SysOutcome::Done(None)
                }
                Some(Syscall::GetTid) => SysOutcome::Done(Some(0)),
                Some(Syscall::GetNcores) => SysOutcome::Done(Some(1)),
                Some(Syscall::ReadCycle) => SysOutcome::Done(Some(now)),
                Some(Syscall::Cas) => {
                    // Single-core host: apply directly.
                    let addr = args[0] & !7;
                    let old = self.mem.read(addr);
                    if old == args[1] {
                        self.mem.write(addr, args[2]);
                    }
                    SysOutcome::Done(Some(old))
                }
                other => panic!("syscall {other:?} unsupported in the CPU unit-test host"),
            }
        }
        fn sys_poll(&mut self, _now: u64) -> SysOutcome {
            unreachable!("TestHost never returns Pending")
        }
    }

    /// Run `program` on a freshly constructed CPU until the thread exits
    /// (panics after `max_cycles`). Returns the host and core stats.
    pub fn run_to_exit(
        ctor: impl Fn(&TargetConfig) -> Box<dyn Cpu>,
        program: &Program,
        max_cycles: u64,
    ) -> (TestHost, CoreStats) {
        let cfg = TargetConfig::small(1);
        let mut cpu = ctor(&cfg);
        let mut host = TestHost {
            mem: FuncMemory::new(),
            printed: vec![],
            queued: BinaryHeap::new(),
            seq: 0,
            mem_latency: cfg.mem.critical_latency(),
            now: 0,
        };
        host.mem.load(program.image());
        cpu.start_thread(program.entry, 0, 0);
        let mut stats = CoreStats::default();
        for now in 1..=max_cycles {
            host.now = now;
            while let Some(&Reverse((ts, _, rb))) = host.queued.peek() {
                if ts > now {
                    break;
                }
                host.queued.pop();
                match rb.unpack() {
                    Reply::DMem { block, granted } => cpu.mem_reply(block, granted, ts),
                    Reply::IMem { block } => cpu.imem_reply(block, ts),
                }
            }
            let mut ctx = CpuCtx { now, host: &mut host, stats: &mut stats };
            cpu.step(&mut ctx);
            stats.cycles = now;
            if cpu.finished() {
                cpu.flush_cache_stats(&mut stats);
                return (host, stats);
            }
        }
        panic!("program did not exit within {max_cycles} cycles");
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn cycle_work_scales_with_activity() {
        use super::cycle_work;
        assert!(cycle_work(0, 0, 0, 0) > 0, "idle cycles still cost host work");
        assert!(cycle_work(4, 4, 4, 0) > cycle_work(0, 0, 0, 0));
        assert!(cycle_work(0, 0, 0, 2) > cycle_work(0, 0, 0, 0));
    }
}
