//! The core thread: one target core + its L1s, driven by the time
//! discipline (paper §2.1–2.2).
//!
//! A [`CoreSim`] owns a CPU timing model, the consumer end of its InQ, the
//! producer end of its OutQ, and the syscall runtime. It exposes a
//! single-cycle [`CoreSim::step_cycle`] used by both the parallel engine
//! (via [`CoreSim::run`], the Pthread body) and the sequential reference
//! engine (which drives all cores round-robin in one thread).
//!
//! InQ handling follows the paper: "the core thread enquires its InQ in
//! every cycle in order to see if its request has been processed ... the
//! core thread reads out the data field of the entry when its local time
//! becomes equal to the timestamp of the entry." Because eager slack
//! schemes can deliver entries whose timestamps are *not* monotone, the
//! queue is drained into a local min-heap and entries are applied when
//! local time reaches them.

use crate::clock::ClockBoard;
use crate::config::TargetConfig;
use crate::cpu::{cycle_work, CoreHost, Cpu, CpuCtx, SysOutcome};
use crate::msg::{InKind, InMsg, OutEvent, OutKind, SyncOp};
use crate::spsc::{Consumer, Producer};
use crate::stats::CoreStats;
use crate::violation::ConflictTracker;
use sk_isa::{DecodedInstr, DecodedProgram, Syscall};
use sk_mem::{FuncMemory, PageCursor};
use sk_snap::{Persist, Reader, SnapError, Writer};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Consecutive inert cycles before a core mem-parks. A core's inert
/// streak can never exceed its scheme's slack (its window is at most
/// `global + slack` and global tracks the slowest core), so with a
/// threshold of 24 the conservative schemes (CC, Q10, L10, S9, S9*) never
/// trigger this path and stay exactly deterministic; only large-slack
/// schemes (S100, SU) use it, where the induced reordering is part of the
/// accepted distortion.
const INERT_PARK_AFTER: u32 = 24;

/// Region-of-interest state shared by all cores and the manager.
#[derive(Debug, Default)]
pub struct RoiState {
    /// Set when the workload signals `RoiBegin`.
    pub active: AtomicBool,
    /// Committed instructions inside the ROI, summed across cores.
    pub committed: AtomicU64,
}

/// Heap-ordered InQ entry: (timestamp, source ring, per-ring order). The
/// source ring breaks same-timestamp ties deterministically even when
/// multiple managers (coordinator + shards) deliver concurrently.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct HeapMsg {
    ts: u64,
    ring: usize,
    arrival: u64,
    msg: InMsg,
}

impl Ord for HeapMsg {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.ts, self.ring, self.arrival).cmp(&(other.ts, other.ring, other.arrival))
    }
}
impl PartialOrd for HeapMsg {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum SysPhase {
    Idle,
    /// Waiting for the manager's SyncReply (the core's clock is suspended
    /// meanwhile and fast-forwarded to the reply timestamp).
    WaitReply {
        op: SyncOp,
    },
}

/// State behind the [`CoreHost`] the CPU model talks to.
struct HostState {
    core_id: usize,
    n_cores: usize,
    tid: u32,
    /// µTLB over the shared functional memory: the common-case access is
    /// one pointer chase with zero shared-state writes.
    mem: PageCursor,
    /// Shared predecoded text segment (fetch fast path).
    text: Arc<DecodedProgram>,
    tracker: Option<Arc<ConflictTracker>>,
    pending_out: Vec<OutKind>,
    sys_phase: SysPhase,
    sync_reply: Option<i64>,
    printed: Vec<i64>,
    roi_begin_seen: bool,
    roi_end_seen: bool,
    stall_request: u64,
    retries: u64,
}

impl HostState {
    fn build_sync_op(&self, code: Syscall, args: [u64; 4]) -> Option<SyncOp> {
        Some(match code {
            Syscall::InitLock => SyncOp::InitLock { id: args[0] as u32 },
            Syscall::Lock => SyncOp::Lock { id: args[0] as u32 },
            Syscall::Unlock => SyncOp::Unlock { id: args[0] as u32 },
            Syscall::InitBarrier => {
                SyncOp::InitBarrier { id: args[0] as u32, count: args[1] as u32 }
            }
            Syscall::Barrier => SyncOp::BarrierArrive { id: args[0] as u32 },
            Syscall::InitSema => SyncOp::InitSema { id: args[0] as u32, count: args[1] as i64 },
            Syscall::SemaWait => SyncOp::SemaWait { id: args[0] as u32 },
            Syscall::SemaSignal => SyncOp::SemaSignal { id: args[0] as u32 },
            Syscall::Spawn => SyncOp::Spawn { entry: args[0], arg: args[1] },
            Syscall::Cas => SyncOp::Cas { addr: args[0] & !7, expected: args[1], desired: args[2] },
            _ => return None,
        })
    }
}

impl CoreHost for HostState {
    fn load(&mut self, addr: u64, ts: u64) -> u64 {
        if let Some(t) = &self.tracker {
            let r = t.record_load(self.core_id, addr, ts);
            self.stall_request += r.stall;
        }
        self.mem.read(addr)
    }

    fn store(&mut self, addr: u64, val: u64, ts: u64) {
        if let Some(t) = &self.tracker {
            let r = t.record_store(self.core_id, addr, ts);
            self.stall_request += r.stall;
        }
        self.mem.write(addr, val);
    }

    fn fetch_word(&mut self, addr: u64) -> u64 {
        self.mem.read(addr)
    }

    fn decoded(&mut self, pc: u64) -> Option<DecodedInstr> {
        self.text.lookup(pc).copied()
    }

    fn emit(&mut self, kind: OutKind) {
        self.pending_out.push(kind);
    }

    fn sys_start(&mut self, code: u16, args: [u64; 4], now: u64) -> SysOutcome {
        let Some(sc) = Syscall::from_code(code) else {
            // Unknown syscall: tolerate as a no-op (workload bug).
            return SysOutcome::Done(None);
        };
        match sc {
            Syscall::Exit => {
                self.emit(OutKind::Exit { code: args[0] });
                SysOutcome::Exit
            }
            Syscall::PrintInt => {
                self.printed.push(args[0] as i64);
                SysOutcome::Done(None)
            }
            Syscall::PrintFloat => {
                self.printed.push(f64::from_bits(args[0]) as i64);
                SysOutcome::Done(None)
            }
            Syscall::GetTid => SysOutcome::Done(Some(self.tid as u64)),
            Syscall::GetNcores => SysOutcome::Done(Some(self.n_cores as u64)),
            Syscall::ReadCycle => SysOutcome::Done(Some(now)),
            Syscall::RoiBegin => {
                self.roi_begin_seen = true;
                self.emit(OutKind::RoiBegin);
                SysOutcome::Done(None)
            }
            Syscall::RoiEnd => {
                self.roi_end_seen = true;
                self.emit(OutKind::RoiEnd);
                SysOutcome::Done(None)
            }
            _ => {
                let op = self.build_sync_op(sc, args).expect("sync syscall");
                self.sync_reply = None;
                self.sys_phase = SysPhase::WaitReply { op };
                self.emit(OutKind::Sync(op));
                SysOutcome::Pending
            }
        }
    }

    fn sys_poll(&mut self, _now: u64) -> SysOutcome {
        match self.sys_phase {
            SysPhase::Idle => SysOutcome::Done(None),
            SysPhase::WaitReply { op } => {
                let Some(v) = self.sync_reply.take() else {
                    return SysOutcome::Pending;
                };
                if matches!(op, SyncOp::Lock { .. } | SyncOp::SemaWait { .. }) && v != 1 {
                    // Withheld grants always deliver 1; any other value is
                    // a protocol bug.
                    debug_assert_eq!(v, 1, "unexpected sync grant value");
                }
                self.sys_phase = SysPhase::Idle;
                match op {
                    SyncOp::Spawn { .. } | SyncOp::Cas { .. } => SysOutcome::Done(Some(v as u64)),
                    _ => SysOutcome::Done(None),
                }
            }
        }
    }
}

/// Result of one non-blocking scheduling quantum of a core
/// ([`CoreSim::run_step`]). Every variant except `Progressed` is a point
/// where the threaded backend blocks; the deterministic backend instead
/// returns control to its scheduler with the core's parked state already
/// published on the [`ClockBoard`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StepOutcome {
    /// Simulated a batch, jumped the clock, or resolved a park/recheck
    /// race; call again.
    Progressed,
    /// Stop flag or `Stop` message observed; the core is done running.
    Stopped,
    /// The workload thread exited (`ClockBoard::finish` already called).
    Finished,
    /// No workload thread and no pending message: the core is `Parked` on
    /// the board and must not step again until unparked.
    Idle,
    /// Blocked in a sync call with no queued reply: `SyncWait` on the
    /// board; resumes when the manager's reply unparks it.
    SyncBlocked,
    /// The scheme window is closed (`local == max_local`): runnable again
    /// once the manager raises the window.
    AtWindow,
    /// Pipeline provably inert with no pending message: `MemWait` on the
    /// board; the caller must clear the inert streak when it resumes the
    /// core ([`CoreSim::clear_inert_streak`]).
    MemBlocked,
}

/// Final output of one core thread.
pub struct CoreOutput {
    /// Per-core counters.
    pub stats: CoreStats,
    /// Optional per-cycle work trace.
    pub trace: Option<Vec<u16>>,
}

/// One simulated core: CPU model + queues + syscall runtime.
pub struct CoreSim {
    id: usize,
    cpu: Box<dyn Cpu>,
    /// InQ consumers: index 0 is the coordination manager's ring;
    /// indices 1.. are the memory shards' reply rings (sharded mode).
    inqs: Vec<Consumer<InMsg>>,
    /// OutQ to the coordination manager.
    outq: Producer<OutEvent>,
    /// OutQs to the memory shards (empty in single-manager mode).
    shard_outqs: Vec<Producer<OutEvent>>,
    /// Per-shard dirty-core bitmasks (shared with the shards): set word
    /// `id >> 6`, bit `id & 63` after landing an event in a shard's ring
    /// so its drain scans only active rings (see [`MemShard::iterate`]).
    shard_dirty: Vec<Arc<Vec<std::sync::atomic::AtomicU64>>>,
    /// Wakeup signals for the shards (parallel engine only).
    shard_signals: Vec<Arc<crate::shard::ShardSignal>>,
    /// Shards this cycle's events were routed to (scratch bitmask).
    shards_touched: u64,
    /// Set when an event routed to a shard index ≥ 64 (beyond the bitmask):
    /// the signal loop then signals every shard instead.
    shards_touched_all: bool,
    /// Cooperative (deterministic-backend) transport mode: a full ring must
    /// never be spin-waited, because the consumer is a task on the *same*
    /// host thread. Events that do not fit go to the overflow queues below
    /// and are re-offered at the next scheduling quantum.
    nonblocking: bool,
    /// Coordinator-bound events that found the OutQ full (nonblocking mode).
    coord_overflow: VecDeque<OutEvent>,
    /// Shard-bound events that found their ring full (nonblocking mode).
    shard_overflow: Vec<VecDeque<OutEvent>>,
    n_banks: usize,
    heap: BinaryHeap<Reverse<HeapMsg>>,
    /// Reusable InQ drain buffer.
    inq_scratch: Vec<InMsg>,
    /// Coordinator-bound events of the current cycle, published as one
    /// batch (single `Release` store of the ring tail).
    out_scratch: Vec<OutEvent>,
    arrival: u64,
    host: HostState,
    stats: CoreStats,
    seq: u64,
    local: u64,
    stop_seen: bool,
    roi: Arc<RoiState>,
    roi_base_committed: u64,
    roi_frozen: Option<u64>,
    trace: Option<Vec<u16>>,
    inert_streak: u32,
    /// Max cycles simulated per local-clock publication (run-ahead
    /// batching); 1 for conservative schemes. See [`Scheme::batch_cap`].
    ///
    /// [`Scheme::batch_cap`]: crate::scheme::Scheme::batch_cap
    batch_cap: u64,
    /// Optional telemetry hub; all hot-loop instrumentation sits behind
    /// this one `Option` branch.
    obs: Option<Arc<sk_obs::Metrics>>,
}

impl CoreSim {
    /// Assemble a core.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        id: usize,
        cfg: &TargetConfig,
        cpu: Box<dyn Cpu>,
        inq: Consumer<InMsg>,
        outq: Producer<OutEvent>,
        mem: FuncMemory,
        text: Arc<DecodedProgram>,
        tracker: Option<Arc<ConflictTracker>>,
        roi: Arc<RoiState>,
    ) -> Self {
        CoreSim {
            id,
            cpu,
            inqs: vec![inq],
            outq,
            shard_outqs: Vec::new(),
            shard_dirty: Vec::new(),
            shard_signals: Vec::new(),
            shards_touched: 0,
            shards_touched_all: false,
            nonblocking: false,
            coord_overflow: VecDeque::new(),
            shard_overflow: Vec::new(),
            n_banks: cfg.mem.n_banks,
            heap: BinaryHeap::new(),
            inq_scratch: Vec::new(),
            out_scratch: Vec::new(),
            arrival: 0,
            host: HostState {
                core_id: id,
                n_cores: cfg.n_cores,
                tid: id as u32,
                mem: mem.cursor(),
                text,
                tracker,
                pending_out: Vec::with_capacity(8),
                sys_phase: SysPhase::Idle,
                sync_reply: None,
                printed: vec![],
                roi_begin_seen: false,
                roi_end_seen: false,
                stall_request: 0,
                retries: 0,
            },
            stats: CoreStats::default(),
            seq: 0,
            local: 0,
            stop_seen: false,
            roi: roi.clone(),
            roi_base_committed: 0,
            roi_frozen: None,
            trace: if cfg.record_trace { Some(Vec::new()) } else { None },
            inert_streak: 0,
            batch_cap: 1,
            obs: None,
        }
    }

    /// Set the run-ahead batch cap (cycles simulated between local-clock
    /// publications). The engine derives it from [`Scheme::batch_cap`];
    /// tests may force it to prove batching is invisible.
    ///
    /// [`Scheme::batch_cap`]: crate::scheme::Scheme::batch_cap
    pub fn set_batch_cap(&mut self, cap: u64) {
        self.batch_cap = cap.max(1);
    }

    /// Attach a telemetry hub and start tracking this core's OutQ
    /// high-water mark.
    pub fn set_obs(&mut self, obs: Arc<sk_obs::Metrics>) {
        self.outq.enable_high_water();
        self.obs = Some(obs);
    }

    /// Publish producer-side ring telemetry and the µTLB counters into
    /// the hub (call when the core is quiescent: end of run, or at a
    /// snapshot safe-point).
    pub fn publish_obs(&mut self) {
        if let Some(obs) = &self.obs {
            let c = &obs.cores[self.id];
            c.outq_high_water.raise_to(self.outq.high_water() as u64);
            let (hits, misses) = self.host.mem.take_counters();
            c.utlb_hits.add(hits);
            c.utlb_misses.add(misses);
        }
    }

    /// Core index.
    pub fn id(&self) -> usize {
        self.id
    }

    /// Attach sharded memory-manager endpoints (sharded mode).
    pub fn attach_shards(
        &mut self,
        reply_rings: Vec<Consumer<InMsg>>,
        event_rings: Vec<Producer<OutEvent>>,
        signals: Vec<Arc<crate::shard::ShardSignal>>,
        dirty: Vec<Arc<Vec<std::sync::atomic::AtomicU64>>>,
    ) {
        assert_eq!(reply_rings.len(), event_rings.len());
        assert_eq!(dirty.len(), event_rings.len());
        self.inqs.extend(reply_rings);
        self.shard_overflow = vec![VecDeque::new(); event_rings.len()];
        self.shard_outqs = event_rings;
        self.shard_signals = signals;
        self.shard_dirty = dirty;
    }

    /// Flag this core's ring as dirty for shard `si` — MUST follow the
    /// ring push (release pairs with the shard's mask-consuming acquire,
    /// so a consumed bit proves the pushed event is visible).
    #[inline]
    fn mark_shard_dirty(&self, si: usize) {
        self.shard_dirty[si][self.id >> 6]
            .fetch_or(1 << (self.id & 63), std::sync::atomic::Ordering::Release);
    }

    /// Switch the transport to cooperative (nonblocking) mode: a full ring
    /// parks the event in an overflow queue instead of spin-waiting for the
    /// consumer. Only the deterministic backend sets this — under threads
    /// the consumers run concurrently and the spin paths are correct.
    pub fn set_nonblocking_rings(&mut self, on: bool) {
        self.nonblocking = on;
    }

    /// Re-offer overflowed events to their rings, preserving per-ring FIFO
    /// order. Returns true when every overflow queue is empty.
    pub fn flush_rings(&mut self) -> bool {
        let mut all = true;
        for si in 0..self.shard_overflow.len() {
            while let Some(&ev) = self.shard_overflow[si].front() {
                if self.shard_outqs[si].try_push(ev).is_ok() {
                    self.shard_overflow[si].pop_front();
                    self.mark_shard_dirty(si);
                } else {
                    if let Some(sig) = self.shard_signals.get(si) {
                        sig.signal();
                    }
                    all = false;
                    break;
                }
            }
        }
        while let Some(&ev) = self.coord_overflow.front() {
            if self.outq.push_batch(std::slice::from_ref(&ev)) == 1 {
                self.coord_overflow.pop_front();
            } else {
                all = false;
                break;
            }
        }
        all
    }

    /// Deliver one event to shard `si`, honoring the transport mode:
    /// blocking rings spin (yielding to the shard) until the push lands,
    /// cooperative rings park overruns in per-ring FIFO overflow.
    fn send_to_shard(&mut self, si: usize, ev: OutEvent) {
        if si < 64 {
            self.shards_touched |= 1 << si;
        } else {
            self.shards_touched_all = true;
        }
        if self.nonblocking {
            // Cooperative mode: the shard task cannot run while we spin,
            // so a full ring parks the event in per-ring FIFO overflow.
            if !self.shard_overflow[si].is_empty() || self.shard_outqs[si].try_push(ev).is_err() {
                // No dirty bit yet: `flush_rings` sets it when the event
                // actually lands (a bit without a ring entry could be
                // consumed early, stranding the event past the frontier).
                self.shard_overflow[si].push_back(ev);
            } else {
                self.mark_shard_dirty(si);
            }
            return;
        }
        let mut item = ev;
        while let Err(back) = self.shard_outqs[si].try_push(item) {
            // The ring is generously sized; a full ring means the
            // shard is far behind — yield to it. If the simulation is
            // being torn down, drop the event.
            if let Some(sig) = self.shard_signals.get(si) {
                sig.signal();
            }
            self.drain_inq();
            if self.stop_seen {
                return;
            }
            item = back;
            std::thread::yield_now();
        }
        self.mark_shard_dirty(si);
    }

    /// Are any events parked in the nonblocking overflow queues?
    pub fn overflow_pending(&self) -> bool {
        !self.coord_overflow.is_empty() || self.shard_overflow.iter().any(|q| !q.is_empty())
    }

    /// Current local time (completed cycles).
    pub fn local(&self) -> u64 {
        self.local
    }

    /// Start the initial workload thread directly (core 0 at init).
    pub fn start_main(&mut self, entry: u64) {
        self.cpu.start_thread(entry, 0, self.id as u32);
    }

    /// Has the workload thread on this core exited?
    pub fn finished(&self) -> bool {
        self.cpu.finished()
    }

    /// Is a workload thread running (started and not exited)?
    pub fn running(&self) -> bool {
        self.cpu.running() && !self.cpu.finished()
    }

    /// Was a `Stop` message received?
    pub fn stopped(&self) -> bool {
        self.stop_seen
    }

    /// Pipeline diagnostic (for stall debugging).
    pub fn debug_state(&self) -> String {
        format!("core {}: local={} {}", self.id, self.local, self.cpu.debug_state())
    }

    /// Is the workload blocked awaiting a sync reply (barrier release,
    /// lock grant/denial, spawn acknowledgement, ...)? Such a core
    /// suspends its clock (see `ClockBoard::sync_park`): waiting consumes
    /// no simulated work, and the reply timestamp tells the core how far
    /// to fast-forward. Spin-retry intervals between lock attempts are
    /// still burned in simulated time.
    pub fn sync_waiting(&self) -> bool {
        matches!(self.host.sys_phase, SysPhase::WaitReply { .. }) && self.host.sync_reply.is_none()
    }

    /// Timestamp of the earliest queued `SyncReply`, if any (drains the
    /// InQ first). Used to fast-forward a sync-parked clock.
    pub fn earliest_sync_reply_ts(&mut self) -> Option<u64> {
        self.drain_inq();
        self.heap
            .iter()
            .filter(|Reverse(h)| matches!(h.msg.kind, InKind::SyncReply { .. }))
            .map(|Reverse(h)| h.ts)
            .min()
    }

    /// Timestamp of the earliest queued InQ message of any kind.
    pub fn earliest_msg_ts(&mut self) -> Option<u64> {
        self.drain_inq();
        self.heap.peek().map(|Reverse(h)| h.ts)
    }

    /// Retained for engine symmetry: with manager-queued locks there is no
    /// spin-retry phase any more, so nothing must keep ticking.
    pub fn sync_retrying(&self) -> bool {
        false
    }

    /// Fast-forward the suspended clock to `target` (release ts - 1).
    pub fn sync_jump(&mut self, target: u64) {
        if target > self.local {
            self.local = target;
        }
    }

    /// Pull everything out of the InQs into the local timestamp heap.
    /// Each ring is drained in batches: one `Release` store of its head
    /// frees the whole chunk for the producing manager at once.
    fn drain_inq(&mut self) {
        let mut scratch = std::mem::take(&mut self.inq_scratch);
        for (ring, q) in self.inqs.iter_mut().enumerate() {
            loop {
                scratch.clear();
                if q.drain_into(&mut scratch, usize::MAX) == 0 {
                    break;
                }
                for &m in &scratch {
                    if matches!(m.kind, InKind::Stop) {
                        self.stop_seen = true;
                        continue;
                    }
                    self.arrival += 1;
                    self.heap.push(Reverse(HeapMsg {
                        ts: m.ts,
                        ring,
                        arrival: self.arrival,
                        msg: m,
                    }));
                }
            }
        }
        self.inq_scratch = scratch;
    }

    /// Timestamp of the earliest pending InQ message, if any.
    pub fn next_msg_ts(&mut self) -> Option<u64> {
        self.drain_inq();
        self.heap.peek().map(|Reverse(h)| h.ts)
    }

    fn apply_due_msgs(&mut self, now: u64) {
        while let Some(&Reverse(h)) = self.heap.peek() {
            if h.ts > now {
                break;
            }
            self.heap.pop();
            match h.msg.kind {
                InKind::DMemReply { block, granted } => self.cpu.mem_reply(block, granted, h.ts),
                InKind::IMemReply { block } => self.cpu.imem_reply(block, h.ts),
                InKind::SyncReply { value } => self.host.sync_reply = Some(value),
                InKind::Invalidate { block, downgrade } => self.cpu.invalidate(block, downgrade),
                InKind::Start { entry, arg, tid } => {
                    self.host.tid = tid;
                    self.cpu.start_thread(entry, arg, tid);
                }
                InKind::Stop => self.stop_seen = true,
            }
        }
    }

    /// Simulate one cycle labelled `now` (normally `local() + 1`; a larger
    /// gap is allowed for cores that were idle-skipped while no workload
    /// thread was running). Returns the number of OutQ events emitted.
    pub fn step_cycle(&mut self, now: u64) -> u32 {
        debug_assert!(now > self.local);
        self.drain_inq();
        self.apply_due_msgs(now);

        let committed0 = self.stats.committed;
        let issued0 = self.stats.issued;
        let fetched0 = self.stats.fetched;

        {
            let mut ctx = CpuCtx { now, host: &mut self.host, stats: &mut self.stats };
            self.cpu.step(&mut ctx);
        }

        // Fast-forward compensation requested by the tracker.
        if self.host.stall_request > 0 {
            self.cpu.add_stall(self.host.stall_request);
            self.host.stall_request = 0;
        }

        // ROI bookkeeping. The cycle that commits RoiBegin itself counts
        // from the post-syscall committed total, so the shared budget
        // counter and the per-core ROI statistic agree exactly.
        let mut roi_floor = committed0;
        if self.host.roi_begin_seen {
            self.host.roi_begin_seen = false;
            self.roi.active.store(true, Ordering::Release);
            self.roi_base_committed = self.stats.committed;
            roi_floor = self.stats.committed;
        }
        if self.host.roi_end_seen {
            self.host.roi_end_seen = false;
            self.roi_frozen = Some(self.stats.committed);
        }
        let committed_delta = self.stats.committed.saturating_sub(roi_floor);
        if committed_delta > 0
            && self.roi.active.load(Ordering::Relaxed)
            && self.roi_frozen.is_none()
        {
            self.roi.committed.fetch_add(committed_delta, Ordering::Relaxed);
        }

        // Flush emitted events with this cycle's timestamp. Memory events
        // route to their bank's shard when sharded managers are attached;
        // everything else (sync, exit, ROI) goes to the coordinator.
        // Coordinator-bound events are collected and published as one
        // batch — N slot writes, a single `Release` store of the tail.
        let mut events = 0u32;
        self.shards_touched = 0;
        self.shards_touched_all = false;
        debug_assert!(self.out_scratch.is_empty());
        for pi in 0..self.host.pending_out.len() {
            let kind = self.host.pending_out[pi];
            let ev = OutEvent { ts: now, seq: self.seq, kind };
            self.seq += 1;
            events += 1;
            let shard = if self.shard_outqs.is_empty() {
                None
            } else {
                match kind {
                    OutKind::DMem { block, .. } | OutKind::IMem { block } => {
                        Some(crate::shard::shard_of(block, self.n_banks, self.shard_outqs.len()))
                    }
                    _ => None,
                }
            };
            let Some(si) = shard else {
                // The coordinator's RoiBegin handler resets directory
                // statistics; sharded directories need the same reset at the
                // same point in event order, so the marker is broadcast into
                // every shard's stream where it lands at its deterministic
                // (ts, core, seq) position.
                if matches!(kind, OutKind::RoiBegin) {
                    for si in 0..self.shard_outqs.len() {
                        self.send_to_shard(si, ev);
                    }
                }
                self.out_scratch.push(ev);
                continue;
            };
            self.send_to_shard(si, ev);
        }
        self.host.pending_out.clear();
        if self.nonblocking {
            let sent = if self.coord_overflow.is_empty() {
                self.outq.push_batch(&self.out_scratch)
            } else {
                0
            };
            self.coord_overflow.extend(self.out_scratch[sent..].iter().copied());
        } else {
            let mut sent = 0;
            while sent < self.out_scratch.len() {
                sent += self.outq.push_batch(&self.out_scratch[sent..]);
                if sent < self.out_scratch.len() {
                    // Ring full: the manager is far behind — yield to it (and
                    // bail if the simulation is being torn down).
                    self.drain_inq();
                    if self.stop_seen {
                        break;
                    }
                    std::thread::yield_now();
                }
            }
        }
        self.out_scratch.clear();

        if let Some(trace) = &mut self.trace {
            // Idle-skipped cycles (no workload thread) cost ~no host work.
            if (trace.len() as u64) < now - 1 {
                trace.resize((now - 1) as usize, 0);
            }
            trace.push(cycle_work(
                self.stats.committed - committed0,
                self.stats.issued - issued0,
                self.stats.fetched - fetched0,
                events as u64,
            ));
        }

        self.local = now;
        events
    }

    /// Set local time without simulating (used to skip the dead time of a
    /// core that has not started a thread yet; it has no state to advance).
    fn jump_local(&mut self, target: u64) {
        debug_assert!(!self.cpu.running());
        self.local = self.local.max(target);
    }

    fn finalize(mut self) -> CoreOutput {
        self.stats.cycles = self.local;
        if let Some(trace) = &mut self.trace {
            if (trace.len() as u64) < self.local {
                trace.resize(self.local as usize, 0);
            }
        }
        self.stats.sys_retries = self.host.retries;
        self.stats.printed = std::mem::take(&mut self.host.printed);
        let end = self.roi_frozen.unwrap_or(self.stats.committed);
        if self.roi.active.load(Ordering::Relaxed) {
            self.stats.roi_committed = end.saturating_sub(self.roi_base_committed);
        }
        self.cpu.flush_cache_stats(&mut self.stats);
        CoreOutput { stats: self.stats, trace: self.trace }
    }

    /// The Pthread body: run under the board's time discipline until the
    /// simulation stops or this core's workload finishes.
    ///
    /// Takes `&mut self` so the engine can get the core back after a
    /// checkpoint teardown (`ClockBoard::stop_all` without a `Stop`
    /// broadcast) and either snapshot it or run another segment;
    /// [`CoreSim::into_output`] finalizes at the true end of the run.
    pub fn run(&mut self, board: &ClockBoard) {
        loop {
            match self.run_step(board) {
                StepOutcome::Progressed => {}
                StepOutcome::Stopped | StepOutcome::Finished => break,
                StepOutcome::Idle | StepOutcome::SyncBlocked => {
                    if !board.wait_parked(self.id) {
                        break;
                    }
                }
                StepOutcome::MemBlocked => {
                    if !board.wait_parked(self.id) {
                        break;
                    }
                    self.inert_streak = 0;
                }
                StepOutcome::AtWindow => {
                    if !board.wait_for_window(self.id, self.local) {
                        break;
                    }
                }
            }
        }
        if self.cpu.finished() {
            board.finish(self.id);
        }
        self.publish_obs();
    }

    /// Reset the inert-cycle streak after a resume from `MemWait`. The
    /// threaded backend does this implicitly after `wait_parked`; the
    /// deterministic backend must do it before stepping a core it resumed
    /// from [`StepOutcome::MemBlocked`], or the core would re-park after a
    /// single batch instead of ticking another `INERT_PARK_AFTER` cycles.
    pub fn clear_inert_streak(&mut self) {
        self.inert_streak = 0;
    }

    /// One non-blocking scheduling quantum: exactly one iteration of the
    /// [`CoreSim::run`] loop. Anywhere the threaded body would block, the
    /// blocking state is published on the board and the matching
    /// [`StepOutcome`] is returned instead; park/recheck races are resolved
    /// inside (a message that arrived between the park and the re-check
    /// unparks immediately and reports `Progressed`). Both backends drive
    /// their cores exclusively through this function, so a CC run is
    /// bit-identical across them by construction.
    pub fn run_step(&mut self, board: &ClockBoard) -> StepOutcome {
        if board.stopping() || self.stop_seen {
            return StepOutcome::Stopped;
        }
        if self.nonblocking && !self.flush_rings() {
            // A ring is still full: stepping further could only grow the
            // overflow. Yield the quantum so the consumer tasks can drain.
            self.drain_inq();
            if self.stop_seen {
                return StepOutcome::Stopped;
            }
            return StepOutcome::Progressed;
        }
        if self.cpu.finished() {
            board.finish(self.id);
            return StepOutcome::Finished;
        }
        if !self.cpu.running() {
            // No thread yet: idle-skip toward the first pending message
            // or park until the manager sends one.
            match self.next_msg_ts() {
                Some(ts) => {
                    if ts > self.local + 1 {
                        let target =
                            (ts - 1).min(board.max_local(self.id)).min(board.checkpoint_limit());
                        if target > self.local {
                            self.jump_local(target);
                            board.jump_local(self.id, target);
                        }
                    }
                }
                None => {
                    board.park(self.id);
                    // Re-check after publishing Parked to close the race
                    // with a concurrent push+unpark.
                    if self.next_msg_ts().is_some() {
                        board.unpark(self.id);
                        return StepOutcome::Progressed;
                    }
                    return StepOutcome::Idle;
                }
            }
        }
        if self.sync_waiting() {
            // The clock is suspended while waiting at a barrier; it
            // fast-forwards to the release timestamp (paper §3.2.3:
            // idle time must be undetectable by the program). Without
            // this, a barrier waiter under large slack burns simulated
            // cycles as fast as the host allows.
            match self.earliest_sync_reply_ts() {
                Some(r) => {
                    let target = r.saturating_sub(1).min(board.checkpoint_limit());
                    if target > self.local {
                        self.sync_jump(target);
                        board.jump_local_unclamped(self.id, target);
                        board.signal_manager();
                    }
                    // Fall through: the next cycle applies the release.
                }
                None => {
                    board.sync_park(self.id);
                    if self.earliest_sync_reply_ts().is_some() {
                        board.unpark(self.id);
                        return StepOutcome::Progressed;
                    }
                    return StepOutcome::SyncBlocked;
                }
            }
        }
        if !board.may_advance(self.id, self.local) {
            return StepOutcome::AtWindow;
        }
        // Run-ahead batch: simulate up to `batch_cap` cycles inside
        // the open window, publishing the local clock once at the
        // end. Every intervening cycle is still simulated in full —
        // InQ messages apply at their exact timestamps and OutQ
        // events keep exact per-cycle stamps — only the publication
        // atomics are amortized. A batch ends early on anything the
        // manager or the park paths must see promptly: emitted
        // events, thread exit/idle, a sync wait, or a stop.
        let limit = board.max_local(self.id).min(board.checkpoint_limit());
        let budget = limit.saturating_sub(self.local).min(self.batch_cap).max(1);
        let c0 = self.stats.committed;
        let i0 = self.stats.issued;
        let f0 = self.stats.fetched;
        let mut batch = 0u64;
        let events = loop {
            let events = self.step_cycle(self.local + 1);
            batch += 1;
            if events > 0
                || batch >= budget
                || self.cpu.finished()
                || !self.cpu.running()
                || self.sync_waiting()
                || self.stop_seen
            {
                break events;
            }
        };
        // Events that did not fit their ring (nonblocking mode) are not yet
        // visible to their consumer; the published clock must not pass them,
        // or an ordered consumer could advance its horizon over a pending
        // timestamp. `flush_rings` at quantum start guarantees overflow can
        // only hold events from this batch, so the clamp stays monotone.
        let mut published = self.local;
        if self.nonblocking {
            let stuck = self
                .coord_overflow
                .front()
                .map(|e| e.ts)
                .into_iter()
                .chain(self.shard_overflow.iter().filter_map(|q| q.front().map(|e| e.ts)))
                .min();
            if let Some(ts) = stuck {
                published = published.min(ts.saturating_sub(1));
            }
        }
        if published > board.local(self.id) {
            board.advance_local_batched(self.id, published);
        }
        // A batch that stopped on budget while a fused run is suspended
        // split that run at the slack-window edge: the block never
        // publishes past the window, it resumes in the next batch.
        if batch >= budget && self.cpu.sb_mid_run() {
            if let Some(e) = self.cpu.sb_events() {
                e.exit_window += 1;
            }
        }
        if let Some(obs) = &self.obs {
            let c = &obs.cores[self.id];
            c.cycles.add(batch);
            c.run_batch.record(batch);
            // Slack at publish time: how far this core may still run
            // ahead before hitting its window (`max_local − local`).
            c.slack.record(board.max_local(self.id).saturating_sub(self.local));
            if events > 0 {
                c.out_batch.record(events as u64);
            }
            // Drain superblock telemetry accumulated by the CPU model.
            if let Some(e) = self.cpu.sb_events() {
                if !e.is_empty() {
                    c.sb_exit_branch.add(e.exit_branch);
                    c.sb_exit_miss.add(e.exit_miss);
                    c.sb_exit_sync.add(e.exit_sync);
                    c.sb_exit_syscall.add(e.exit_syscall);
                    c.sb_exit_window.add(e.exit_window);
                    c.sb_exit_fallback.add(e.exit_fallback);
                    for (len, &n) in e.len_counts.iter().enumerate() {
                        if n > 0 {
                            c.sb_block_len.record_n(len as u64, n);
                        }
                    }
                    e.clear();
                }
            }
        }
        if events > 0 {
            board.signal_manager();
            if self.shards_touched_all {
                for sig in &self.shard_signals {
                    sig.signal();
                }
            } else {
                let mut touched = self.shards_touched;
                while touched != 0 {
                    let si = touched.trailing_zeros() as usize;
                    touched &= touched - 1;
                    self.shard_signals[si].signal();
                }
            }
        }

        // Inert-cycle suspension: a cycle with no commits, issues,
        // fetches or events changes nothing observable. After a run of
        // them the pipeline is provably waiting for an InQ message, so
        // ticking further only burns host time (and, under large
        // slack, lets the clock run far past pending reply
        // timestamps, distorting timing). Suspend and fast-forward to
        // the next message — the skipped cycles are inert, so the
        // simulated outcome is bit-identical. Spin-retry phases must
        // keep ticking to reach their retry time.
        let inert = self.stats.committed == c0
            && self.stats.issued == i0
            && self.stats.fetched == f0
            && events == 0;
        if inert && !self.sync_retrying() {
            // Every cycle of an inert batch was inert (any activity
            // would have changed the stats or emitted an event).
            self.inert_streak += batch as u32;
        } else {
            self.inert_streak = 0;
        }
        if self.inert_streak >= INERT_PARK_AFTER {
            match self.earliest_msg_ts() {
                Some(ts) if ts > self.local + 1 => {
                    // Clamp to the window: the skipped cycles are inert
                    // so the outcome is identical either way, but the
                    // clock must not escape the slack discipline (the
                    // laggard's window is its own local + slack).
                    let target =
                        (ts - 1).min(board.max_local(self.id)).min(board.checkpoint_limit());
                    if target > self.local {
                        self.sync_jump(target);
                        board.jump_local_unclamped(self.id, target);
                        board.signal_manager();
                    }
                    self.inert_streak = 0;
                }
                Some(_) => {
                    // A message is due: the next cycle consumes it.
                    self.inert_streak = 0;
                }
                None => {
                    // Unlike a sync wait, the clock stays visible so
                    // global time freezes with us (lockstep preserved).
                    board.mem_park(self.id);
                    if self.earliest_msg_ts().is_some() {
                        board.unpark(self.id);
                        // The streak survives a park/recheck race, exactly
                        // as the threaded `continue` did.
                        return StepOutcome::Progressed;
                    }
                    return StepOutcome::MemBlocked;
                }
            }
        }
        StepOutcome::Progressed
    }

    /// Finalize without running (sequential engine path, and the parallel
    /// engine once the simulation is truly over).
    pub fn into_output(self) -> CoreOutput {
        self.finalize()
    }

    // ---- snapshot support ----

    /// Drain every InQ ring into the local timestamp heap (safe-point
    /// preparation: ring contents become part of the serialized heap, so
    /// fresh rings on restore start empty).
    pub fn drain_pending(&mut self) {
        self.drain_inq();
    }

    /// Serialize all dynamic state. Call only at a safe-point with the
    /// core thread joined and the InQ rings drained ([`CoreSim::drain_pending`]).
    /// Functional memory and the conflict tracker are engine-owned shared
    /// state and are serialized by the engine, not here.
    pub fn save_state(&self, w: &mut Writer) {
        // CPU model blob, length-prefixed so a reader always consumes
        // exactly what the model wrote.
        let mut cw = Writer::new();
        self.cpu.save_state(&mut cw);
        let blob = cw.into_bytes();
        w.put_usize(blob.len());
        w.put_bytes(&blob);

        w.put_u64(self.local);
        w.put_u64(self.seq);
        w.put_u64(self.arrival);
        w.put_bool(self.stop_seen);

        // Pending InQ messages, in deterministic heap order.
        let mut msgs: Vec<&HeapMsg> = self.heap.iter().map(|Reverse(h)| h).collect();
        msgs.sort_by_key(|h| (h.ts, h.ring, h.arrival));
        w.put_usize(msgs.len());
        for h in msgs {
            w.put_u64(h.ts);
            w.put_usize(h.ring);
            w.put_u64(h.arrival);
            h.msg.save(w);
        }

        // Syscall runtime.
        w.put_u32(self.host.tid);
        match self.host.sys_phase {
            SysPhase::Idle => w.put_u8(0),
            SysPhase::WaitReply { op } => {
                w.put_u8(1);
                op.save(w);
            }
        }
        self.host.sync_reply.save(w);
        w.put_usize(self.host.printed.len());
        for &v in &self.host.printed {
            w.put_i64(v);
        }
        w.put_u64(self.host.stall_request);
        w.put_u64(self.host.retries);

        self.stats.save(w);
        w.put_u64(self.roi_base_committed);
        self.roi_frozen.save(w);
        w.put_u32(self.inert_streak);
    }

    /// Restore dynamic state written by [`CoreSim::save_state`] into a
    /// freshly plumbed core (same configuration, fresh queues, CPU model
    /// already constructed). Never panics on corrupt input.
    pub fn restore_state(&mut self, r: &mut Reader<'_>) -> Result<(), SnapError> {
        let n = r.get_count(1)?;
        let blob = r.take(n)?;
        let mut cr = Reader::new(blob);
        self.cpu.restore_state(&mut cr)?;
        cr.finish()?;

        self.local = r.get_u64()?;
        self.seq = r.get_u64()?;
        self.arrival = r.get_u64()?;
        self.stop_seen = r.get_bool()?;

        self.heap.clear();
        let n = r.get_count(16)?;
        for _ in 0..n {
            let ts = r.get_u64()?;
            let ring = r.get_usize()?;
            let arrival = r.get_u64()?;
            let msg = InMsg::load(r)?;
            if ring >= self.inqs.len() {
                return Err(SnapError::Corrupt(format!(
                    "heap message from ring {ring} but only {} rings",
                    self.inqs.len()
                )));
            }
            self.heap.push(Reverse(HeapMsg { ts, ring, arrival, msg }));
        }

        self.host.tid = r.get_u32()?;
        self.host.sys_phase = match r.get_u8()? {
            0 => SysPhase::Idle,
            1 => SysPhase::WaitReply { op: SyncOp::load(r)? },
            t => return Err(SnapError::Corrupt(format!("sys phase tag {t}"))),
        };
        self.host.sync_reply = Option::<i64>::load(r)?;
        let n = r.get_count(8)?;
        self.host.printed.clear();
        self.host.printed.reserve(n);
        for _ in 0..n {
            self.host.printed.push(r.get_i64()?);
        }
        self.host.stall_request = r.get_u64()?;
        self.host.retries = r.get_u64()?;

        self.stats = CoreStats::load(r)?;
        self.roi_base_committed = r.get_u64()?;
        self.roi_frozen = Option::<u64>::load(r)?;
        self.inert_streak = r.get_u32()?;
        Ok(())
    }
}
