//! Sharded memory managers (the paper's §2.2 extension).
//!
//! > "If the simulation manager thread ever becomes a bottleneck it is
//! > possible to split the functionality of the manager thread also into
//! > several threads."
//!
//! This module implements that split: the *coordination* manager keeps the
//! clocks, windows, sync objects and thread placement, while the
//! lower-hierarchy memory work (directory + L2 banks) is partitioned over
//! `n` **memory-shard** threads by bank (`shard = bank mod n`). Each shard
//! owns its banks' directory state and an interconnect channel, consumes
//! per-core SPSC rings of memory events, and produces replies and
//! invalidations on per-core SPSC rings of its own.
//!
//! Ordering: within a shard, timestamp-ordered schemes process events in
//! `(ts, core, seq)` order behind the global-time horizon, exactly like
//! the single manager, and the coordinator holds ordered-scheme windows
//! back to the slowest shard's published **frontier** so no core ever
//! ticks past an undelivered reply. The result (asserted by tests): the
//! sharded engine is fully *deterministic* for every conservative scheme
//! at any shard count, and differs in timing from the single manager only
//! through the interconnect model — one occupancy channel per bank group
//! instead of one shared channel (sub-1% on the paper kernels, exactly
//! zero when the shared channel was uncontended). Eager schemes skip the
//! frontier (the paper's semantics have no such coupling) and simply gain
//! manager throughput — which measurably shrinks their host-induced
//! timing error.

use crate::clock::ClockBoard;
use crate::config::TargetConfig;
use crate::msg::{GlobalEvent, InKind, InMsg, OutEvent, OutKind};
use crate::scheme::{EventOrdering, Scheme};
use crate::spsc::{Consumer, Producer};
use parking_lot::{Condvar, Mutex};
use sk_mem::l1::ReqKind;
use sk_mem::Directory;
use std::cmp::Reverse;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Wakeup channel for one shard manager.
#[derive(Default)]
pub struct ShardSignal {
    pending: Mutex<bool>,
    cond: Condvar,
}

impl ShardSignal {
    /// Notify the shard that events are available.
    pub fn signal(&self) {
        let mut p = self.pending.lock();
        *p = true;
        self.cond.notify_one();
    }

    /// Consume the pending flag without blocking: true if a signal
    /// arrived since the last `wait`/`take`. The deterministic backend
    /// gates shard picks on this — an unsignalled shard has nothing to
    /// do, so the scheduler skips its O(n_cores) ring scan.
    pub fn take(&self) -> bool {
        let mut p = self.pending.lock();
        std::mem::replace(&mut *p, false)
    }

    /// Peek the pending flag without consuming it.
    pub fn pending(&self) -> bool {
        *self.pending.lock()
    }

    /// Park until signalled or `timeout`.
    pub fn wait(&self, timeout: Duration) {
        let mut p = self.pending.lock();
        if !*p {
            self.cond.wait_for(&mut p, timeout);
        }
        *p = false;
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct OrderedEv(GlobalEvent);

impl Ord for OrderedEv {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.key().cmp(&other.0.key())
    }
}
impl PartialOrd for OrderedEv {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// One memory-shard manager: a directory shard plus its queue endpoints.
pub struct MemShard {
    /// Shard index (owns banks where `bank % n_shards == index`).
    pub index: usize,
    scheme: Scheme,
    dir: Directory,
    ordered: std::collections::BinaryHeap<Reverse<OrderedEv>>,
    /// Event rings, one per core (this shard is the consumer).
    pub from_cores: Vec<Consumer<OutEvent>>,
    /// Dirty-core bitmask (word `c >> 6`, bit `c & 63`): core `c` sets
    /// its bit after landing an event in `from_cores[c]`; `iterate`
    /// swap-consumes the mask and drains only flagged rings, so the
    /// per-iteration cost scales with *active* cores, not `n_cores`.
    /// Soundness of skipping the rest rides on the frontier argument:
    /// any event with `ts <= g` — and its dirty bit — happens-before
    /// the local-clock advance that fed `g`, so reading `g` first makes
    /// the swap see every bit the frontier publication is about to
    /// vouch for.
    dirty: Arc<Vec<AtomicU64>>,
    /// Reply rings, one per core (this shard is the producer).
    to_cores: Vec<Producer<InMsg>>,
    overflow: Vec<VecDeque<InMsg>>,
    /// Total messages across `overflow` (skips the O(n_cores) scan).
    overflow_len: usize,
    /// Cores that received a reply since the last wakeup flush.
    wake_pending: Vec<bool>,
    /// Any bit set in `wake_pending` (skips the O(n_cores) scan).
    wake_any: bool,
    /// Reusable ring-drain buffer.
    scratch: Vec<OutEvent>,
    board: Arc<ClockBoard>,
    /// Global time through which this shard has processed *and delivered*
    /// every event (its frontier). The coordinator holds ordered-scheme
    /// windows back to the slowest shard frontier, which is what makes
    /// sharded conservative schemes deterministic: no core can tick past
    /// a timestamp whose events are still in flight.
    pub frontier: Arc<AtomicU64>,
    /// Cores in this shard's clock domain (`core % n_shards == index`).
    /// The coordinator publishes one window grant; each shard paces its
    /// own domain, so the O(n_cores) raise loop parallelizes with the
    /// shard count instead of serializing in the coordinator.
    domain: Vec<usize>,
    /// Latest window grant from the coordinator (monotone; see
    /// [`MemShard::iterate`]). Raising windows late never changes simulated
    /// results — cores simply stay blocked a little longer — so the grant
    /// path is liveness-only and needs no extra synchronization beyond the
    /// release/acquire pair on this cell.
    grant: Arc<AtomicU64>,
    /// Last grant applied to the domain.
    last_window: u64,
    /// Events processed by this shard.
    pub events_processed: u64,
    /// Optional telemetry hub (drain-batch histogram).
    obs: Option<Arc<sk_obs::Metrics>>,
}

impl MemShard {
    /// Assemble a shard.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        index: usize,
        cfg: &TargetConfig,
        scheme: Scheme,
        from_cores: Vec<Consumer<OutEvent>>,
        to_cores: Vec<Producer<InMsg>>,
        board: Arc<ClockBoard>,
        grant: Arc<AtomicU64>,
        dirty: Arc<Vec<AtomicU64>>,
    ) -> Self {
        let n_shards = cfg.mem_shards.max(1);
        MemShard {
            index,
            scheme,
            dir: Directory::new(cfg.n_cores, cfg.mem),
            ordered: Default::default(),
            from_cores,
            dirty,
            to_cores,
            overflow: (0..cfg.n_cores).map(|_| VecDeque::new()).collect(),
            overflow_len: 0,
            wake_pending: vec![false; cfg.n_cores],
            wake_any: false,
            scratch: Vec::new(),
            board,
            frontier: Arc::new(AtomicU64::new(0)),
            domain: (0..cfg.n_cores).filter(|c| c % n_shards == index).collect(),
            grant,
            last_window: 0,
            events_processed: 0,
            obs: None,
        }
    }

    /// Attach a telemetry hub (drain-batch sizes land in
    /// `manager.shard_batch`).
    pub fn set_obs(&mut self, obs: Arc<sk_obs::Metrics>) {
        self.obs = Some(obs);
    }

    fn push_to_core(&mut self, core: usize, msg: InMsg) {
        if self.overflow[core].is_empty() {
            if let Err(back) = self.to_cores[core].try_push(msg) {
                self.overflow[core].push_back(back);
                self.overflow_len += 1;
            }
        } else {
            self.overflow[core].push_back(msg);
            self.overflow_len += 1;
        }
        // Deferred to `flush_wakeups`: one unpark per core per iteration.
        self.wake_pending[core] = true;
        self.wake_any = true;
    }

    fn flush_wakeups(&mut self) {
        if !self.wake_any {
            return;
        }
        self.wake_any = false;
        for core in 0..self.wake_pending.len() {
            if self.wake_pending[core] {
                self.wake_pending[core] = false;
                self.board.unpark(core);
            }
        }
    }

    fn flush_overflow(&mut self) {
        if self.overflow_len == 0 {
            return;
        }
        for core in 0..self.overflow.len() {
            while let Some(msg) = self.overflow[core].front().copied() {
                match self.to_cores[core].try_push(msg) {
                    Ok(()) => {
                        self.overflow[core].pop_front();
                        self.overflow_len -= 1;
                    }
                    Err(_) => break,
                }
            }
        }
    }

    fn process_event(&mut self, ge: GlobalEvent) {
        self.events_processed += 1;
        let core = ge.core;
        let ts = ge.ev.ts;
        match ge.ev.kind {
            OutKind::DMem { req, block } => {
                let out = self.dir.handle(core, req, block, ts);
                for inv in &out.invalidations {
                    self.push_to_core(
                        inv.core,
                        InMsg {
                            ts: inv.ts,
                            kind: InKind::Invalidate { block: inv.block, downgrade: inv.downgrade },
                        },
                    );
                }
                if let Some(granted) = out.granted {
                    self.push_to_core(
                        core,
                        InMsg { ts: out.done_ts, kind: InKind::DMemReply { block, granted } },
                    );
                }
            }
            OutKind::IMem { block } => {
                let out = self.dir.handle(core, ReqKind::GetS, block, ts);
                for inv in &out.invalidations {
                    self.push_to_core(
                        inv.core,
                        InMsg {
                            ts: inv.ts,
                            kind: InKind::Invalidate { block: inv.block, downgrade: inv.downgrade },
                        },
                    );
                }
                self.push_to_core(
                    core,
                    InMsg { ts: out.done_ts, kind: InKind::IMemReply { block } },
                );
            }
            // Mirror of the coordinator's ROI reset: the core broadcasts the
            // marker into every shard stream, so pre-ROI warm-up traffic
            // vanishes from sharded directory totals exactly as it does from
            // the single manager's.
            OutKind::RoiBegin => self.dir.reset_stats(),
            // Memory shards receive only memory and ROI-marker events.
            _ => unreachable!("non-memory event routed to a shard"),
        }
    }

    /// One iteration: apply the coordinator's window grant to this shard's
    /// clock domain, drain rings, process per the scheme discipline.
    /// Returns `true` if any observable work happened (events drained or
    /// processed, deliveries flushed, windows raised, frontier advanced) —
    /// the deterministic backend's stall detector keys off this.
    pub fn iterate(&mut self) -> bool {
        let mut progressed = false;
        // Window pacing for this shard's clock domain: the coordinator
        // publishes one monotone grant, every shard fans it out to its own
        // cores. Late application is harmless (cores just block longer);
        // `raise_max_local` itself ignores lowering, so replays of a stale
        // grant are no-ops.
        let grant = self.grant.load(Ordering::Acquire);
        if grant > self.last_window {
            self.last_window = grant;
            for &c in &self.domain {
                self.board.raise_max_local(c, grant);
            }
            if let Some(obs) = &self.obs {
                obs.shards[self.index].window_raises.add(1);
            }
            progressed = true;
        }
        let g = self.board.global();
        let eager = self.scheme.ordering() == EventOrdering::Eager;
        let events0 = self.events_processed;
        let mut drained = 0u64;
        let mut scratch = std::mem::take(&mut self.scratch);
        // Dirty-mask drain: only rings whose core flagged a push since the
        // last consume. The mask is swapped *after* reading `g` above, so
        // every event the frontier publication below vouches for (ts <= g,
        // hence pushed-and-flagged before its core's clock fed `g`) is
        // covered; bits set after the swap are picked up next iteration
        // and describe events beyond `g`.
        for wi in 0..self.dirty.len() {
            let mut m = self.dirty[wi].swap(0, Ordering::Acquire);
            while m != 0 {
                let c = (wi << 6) | m.trailing_zeros() as usize;
                m &= m - 1;
                loop {
                    scratch.clear();
                    if self.from_cores[c].drain_into(&mut scratch, usize::MAX) == 0 {
                        break;
                    }
                    drained += scratch.len() as u64;
                    if let Some(obs) = &self.obs {
                        obs.manager.shard_batch.record(scratch.len() as u64);
                        obs.shards[self.index].drain_batch.record(scratch.len() as u64);
                    }
                    if eager {
                        for &ev in &scratch {
                            self.process_event(GlobalEvent { core: c, ev });
                        }
                    } else {
                        self.ordered.extend(
                            scratch
                                .iter()
                                .map(|&ev| Reverse(OrderedEv(GlobalEvent { core: c, ev }))),
                        );
                    }
                }
            }
        }
        self.scratch = scratch;
        let horizon = match self.scheme.ordering() {
            EventOrdering::Eager => None,
            EventOrdering::TimestampOrdered => Some(g),
            EventOrdering::AtBarrier => match self.scheme {
                Scheme::Quantum(q) => Some((g / q) * q),
                _ => Some(g),
            },
        };
        if let Some(h) = horizon {
            while let Some(&Reverse(OrderedEv(ge))) = self.ordered.peek() {
                if ge.ev.ts > h {
                    break;
                }
                self.ordered.pop();
                self.process_event(ge);
            }
        }
        let had_overflow = self.overflow_len > 0;
        self.flush_overflow();
        self.flush_wakeups();
        // Publish the processed frontier: every event with ts <= g had
        // arrived before g was computed (cores push before advancing their
        // local clocks) and has now been processed and delivered.
        let all_delivered = self.overflow_len == 0;
        if all_delivered && self.frontier.fetch_max(g, Ordering::Release) < g {
            progressed = true;
            // The coordinator's ordered-scheme window may be clamped on
            // this very frontier; wake it so the grant path stays
            // signal-driven instead of timeout-paced.
            self.board.signal_manager();
        }
        if let Some(obs) = &self.obs {
            let sh = &obs.shards[self.index];
            sh.iterations.add(1);
            sh.events.add(self.events_processed - events0);
            sh.heap_occupancy.record(self.ordered.len() as u64);
            sh.frontier_lag.record(g.saturating_sub(self.frontier.load(Ordering::Relaxed)));
        }
        progressed
            || drained > 0
            || self.events_processed > events0
            || (had_overflow && all_delivered)
    }

    /// Drain everything unconditionally (shutdown).
    pub fn finish(&mut self) {
        let mut scratch = std::mem::take(&mut self.scratch);
        for c in 0..self.from_cores.len() {
            loop {
                scratch.clear();
                if self.from_cores[c].drain_into(&mut scratch, usize::MAX) == 0 {
                    break;
                }
                self.ordered.extend(
                    scratch.iter().map(|&ev| Reverse(OrderedEv(GlobalEvent { core: c, ev }))),
                );
            }
        }
        self.scratch = scratch;
        while let Some(Reverse(OrderedEv(ge))) = self.ordered.pop() {
            self.process_event(ge);
        }
        self.flush_overflow();
        self.flush_wakeups();
    }

    /// This shard's directory statistics.
    pub fn dir_stats(&self) -> sk_mem::directory::DirStats {
        self.dir.stats
    }

    /// This shard's interconnect statistics.
    pub fn bus_stats(&self) -> sk_mem::bus::BusStats {
        self.dir.bus_stats()
    }

    /// Are all produced replies delivered (no per-core overflow pending)?
    pub fn deliveries_flushed(&self) -> bool {
        self.overflow.iter().all(|o| o.is_empty())
    }

    /// The thread body for a shard manager.
    pub fn run(mut self, signal: Arc<ShardSignal>) -> MemShard {
        loop {
            signal.wait(Duration::from_micros(200));
            let t0 = self.obs.is_some().then(std::time::Instant::now);
            self.iterate();
            if let (Some(t0), Some(obs)) = (t0, &self.obs) {
                obs.shards[self.index].busy_ns.add(t0.elapsed().as_nanos() as u64);
            }
            if self.board.stopping() {
                self.finish();
                return self;
            }
        }
    }

    // ---- snapshot support ----

    /// Serialize shard-local dynamic state. Call only at a safe-point with
    /// the shard quiescent: [`MemShard::finish`] run (ordered heap empty)
    /// and all deliveries flushed.
    pub fn save_state(&self, w: &mut sk_snap::Writer) {
        debug_assert!(self.ordered.is_empty(), "shard heap must be drained at a safe-point");
        debug_assert!(self.deliveries_flushed(), "shard deliveries must be flushed");
        use sk_snap::Persist;
        w.put_u64(self.frontier.load(Ordering::Acquire));
        w.put_u64(self.last_window);
        w.put_u64(self.events_processed);
        self.dir.save(w);
    }

    /// Restore state written by [`MemShard::save_state`] into a freshly
    /// plumbed shard (same configuration, fresh rings).
    pub fn restore_state(&mut self, r: &mut sk_snap::Reader<'_>) -> Result<(), sk_snap::SnapError> {
        use sk_snap::Persist;
        self.frontier.store(r.get_u64()?, Ordering::Release);
        self.last_window = r.get_u64()?;
        self.events_processed = r.get_u64()?;
        self.dir = Directory::load(r)?;
        Ok(())
    }
}

/// The shard owning `block` among `n` shards (bank-interleaved).
#[inline]
pub fn shard_of(block: sk_mem::BlockAddr, n_banks: usize, n_shards: usize) -> usize {
    ((block as usize) % n_banks) % n_shards
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_routing_is_bank_interleaved() {
        // 8 banks over 2 shards: even banks -> shard 0, odd -> shard 1.
        for block in 0..64u64 {
            let s = shard_of(block, 8, 2);
            assert_eq!(s, (block % 8 % 2) as usize);
        }
    }

    #[test]
    fn signal_wakes_waiter() {
        let sig = Arc::new(ShardSignal::default());
        sig.signal();
        // Pending flag consumed without blocking.
        sig.wait(Duration::from_secs(5));
        // No pending: times out quickly.
        let t0 = std::time::Instant::now();
        sig.wait(Duration::from_millis(1));
        assert!(t0.elapsed() >= Duration::from_micros(500));
    }
}
