//! # sk-core — the SlackSim parallel simulation engine
//!
//! A reproduction of *"Exploiting Simulation Slack to Improve Parallel
//! Simulation Speed"* (Chen, Annavaram, Dubois — ICPP 2009): a parallel
//! CMP-on-CMP microarchitecture simulator where each target core is
//! simulated by one host thread and a simulation-manager thread models the
//! shared L2/directory and paces the run through three shared clocks
//! (`global ≤ local ≤ max_local`).
//!
//! ## Quick start
//!
//! ```no_run
//! use sk_core::{run_parallel, run_sequential, Scheme, TargetConfig};
//! use sk_isa::{ProgramBuilder, Reg, Syscall};
//!
//! // A trivial workload for an 8-core target.
//! let mut b = ProgramBuilder::new();
//! b.li(Reg::arg(0), 42);
//! b.sys(Syscall::PrintInt);
//! b.sys(Syscall::Exit);
//! let program = b.build().unwrap();
//!
//! let cfg = TargetConfig::paper_8core();
//! // Gold standard: sequential cycle-by-cycle.
//! let baseline = run_sequential(&program, &cfg);
//! // Bounded slack with a 9-cycle window (the paper's S9).
//! let s9 = run_parallel(&program, Scheme::BoundedSlack(9), &cfg);
//! println!("error = {:.3}%", 100.0 * s9.exec_time_error(&baseline));
//! ```
//!
//! ## Map of the crate
//!
//! | module | paper concept |
//! |---|---|
//! | [`scheme`] | §3 slack schemes (CC, Q, L, S, S*, SU, adaptive) |
//! | [`adapt`] | extension: closed-loop slack controller (`A<budget>`) |
//! | [`clock`] | §2.1 global/local/max-local time + thread parking |
//! | [`msg`], [`spsc`] | §2.2 OutQ / InQ / GQ event queues |
//! | [`cpu`] | §2.2/§4.1 OoO (NetBurst-like) and in-order core models |
//! | [`sync`] | §4 Table 1 lock/barrier/semaphore API |
//! | [`uncore`] | §2 manager thread: directory, L2, event disciplines |
//! | [`violation`] | §3.2 simulation-violation taxonomy + fast-forward |
//! | [`engine`] | the parallel engine (N+1 Pthreads) |
//! | [`seq`] | the single-thread cycle-by-cycle baseline |

pub mod adapt;
pub mod backend;
pub mod clock;
pub mod config;
pub mod core_thread;
pub mod cpu;
pub mod engine;
pub mod exec;
pub mod interp;
pub mod msg;
pub mod scheme;
pub mod seq;
pub mod shard;
pub mod spsc;
pub mod stats;
pub mod sync;
pub mod uncore;
pub mod violation;

pub use adapt::{AdaptDecision, SlackController};
pub use backend::{run_det, DetEngine, ExecBackend};
pub use config::{ConfigError, CoreConfig, CoreModel, StopCondition, TargetConfig};
pub use engine::{run_parallel, Engine, RunOutcome};
pub use interp::{interpret, interpret_with, InterpResult, InterpStop};
pub use scheme::{Scheme, SchemeParseError};
pub use seq::{run_sequential, run_sequential_debug as seq_debug};
pub use stats::{CoreStats, EngineStats, SimReport, ViolationReport};
