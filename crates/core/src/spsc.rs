//! Bounded single-producer / single-consumer ring with consumer-side peek.
//!
//! The paper's communication structure is strictly SPSC: each core thread's
//! OutQ has the core as producer and the manager as consumer; each InQ has
//! the manager as producer and the core as consumer (§2.2). A dedicated
//! lock-free ring keeps the per-cycle InQ poll ("the core thread enquires
//! its InQ in every cycle") down to one atomic load, and `peek` lets the
//! consumer inspect a timestamped entry without committing to pop it — the
//! core leaves future-stamped replies queued until its local time reaches
//! them.
//!
//! Memory ordering follows the classic Lamport queue: the producer
//! publishes with a `Release` store of `tail`; the consumer acquires it, so
//! the slot write happens-before the read (Rust Atomics and Locks, ch. 5).

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

struct Ring<T> {
    buf: Box<[UnsafeCell<MaybeUninit<T>>]>,
    capacity: usize,
    head: AtomicUsize, // next index to pop (owned by consumer)
    tail: AtomicUsize, // next index to push (owned by producer)
}

// Safety: only one producer touches `tail`/writes slots, only one consumer
// touches `head`/reads slots; the Release/Acquire pair on `tail` (push) and
// `head` (pop) orders the slot accesses.
unsafe impl<T: Send> Send for Ring<T> {}
unsafe impl<T: Send> Sync for Ring<T> {}

/// Producer endpoint. Not `Clone`: exactly one producer may exist.
pub struct Producer<T> {
    ring: Arc<Ring<T>>,
    /// Cached head, refreshed only when the ring looks full.
    cached_head: usize,
    /// When set, successful pushes update `high_water` with the post-push
    /// occupancy. The occupancy is computed against `cached_head`, which
    /// may lag the consumer, so the mark is an upper bound on the true
    /// occupancy (over-reporting at most what the consumer drained since
    /// the last cache refresh, bounded by capacity). Good enough for ring
    /// sizing and free of extra cross-core traffic on the hot path.
    track_hw: bool,
    high_water: usize,
}

/// Consumer endpoint. Not `Clone`: exactly one consumer may exist.
pub struct Consumer<T> {
    ring: Arc<Ring<T>>,
    /// Cached tail, refreshed only when the ring looks empty.
    cached_tail: usize,
}

/// Create a bounded SPSC channel holding at most `capacity` items.
pub fn channel<T>(capacity: usize) -> (Producer<T>, Consumer<T>) {
    assert!(capacity > 0);
    let buf: Vec<UnsafeCell<MaybeUninit<T>>> =
        (0..capacity + 1).map(|_| UnsafeCell::new(MaybeUninit::uninit())).collect();
    let ring = Arc::new(Ring {
        buf: buf.into_boxed_slice(),
        capacity: capacity + 1, // one slot sacrificed to distinguish full/empty
        head: AtomicUsize::new(0),
        tail: AtomicUsize::new(0),
    });
    (
        Producer { ring: ring.clone(), cached_head: 0, track_hw: false, high_water: 0 },
        Consumer { ring, cached_tail: 0 },
    )
}

impl<T> Producer<T> {
    /// Try to enqueue; returns the value back if the ring is full.
    pub fn try_push(&mut self, value: T) -> Result<(), T> {
        let ring = &*self.ring;
        let tail = ring.tail.load(Ordering::Relaxed);
        let next = if tail + 1 == ring.capacity { 0 } else { tail + 1 };
        if next == self.cached_head {
            self.cached_head = ring.head.load(Ordering::Acquire);
            if next == self.cached_head {
                return Err(value);
            }
        }
        // Safety: slot `tail` is not visible to the consumer until the
        // Release store below, and no other producer exists.
        unsafe { (*ring.buf[tail].get()).write(value) };
        ring.tail.store(next, Ordering::Release);
        if self.track_hw {
            let cap = ring.capacity;
            let used = if next >= self.cached_head {
                next - self.cached_head
            } else {
                next + cap - self.cached_head
            };
            self.high_water = self.high_water.max(used);
        }
        Ok(())
    }

    /// Enqueue as many leading items of `items` as currently fit, writing
    /// every slot first and then publishing them all with a **single**
    /// `Release` store of `tail`. Returns the number enqueued (a prefix of
    /// `items`); 0 means the ring was full.
    ///
    /// The consumer observes either none or all of the batch — per-item
    /// `tail` traffic (and the matching cache-line ping-pong) collapses to
    /// one store per batch.
    pub fn push_batch(&mut self, items: &[T]) -> usize
    where
        T: Copy,
    {
        let ring = &*self.ring;
        let cap = ring.capacity;
        let tail = ring.tail.load(Ordering::Relaxed);
        let free_from = |head: usize| {
            let used = if tail >= head { tail - head } else { tail + cap - head };
            cap - 1 - used
        };
        let mut free = free_from(self.cached_head);
        if free < items.len() {
            self.cached_head = ring.head.load(Ordering::Acquire);
            free = free_from(self.cached_head);
        }
        let n = items.len().min(free);
        if n == 0 {
            return 0;
        }
        let mut idx = tail;
        for &v in &items[..n] {
            // Safety: the `n` slots starting at `tail` are free (checked
            // above) and invisible to the consumer until the Release store
            // below; no other producer exists.
            unsafe { (*ring.buf[idx].get()).write(v) };
            idx = if idx + 1 == cap { 0 } else { idx + 1 };
        }
        ring.tail.store(idx, Ordering::Release);
        if self.track_hw {
            let occupancy = cap - 1 - free + n;
            self.high_water = self.high_water.max(occupancy);
        }
        n
    }

    /// Start recording the occupancy high-water mark on this producer.
    pub fn enable_high_water(&mut self) {
        self.track_hw = true;
    }

    /// Highest post-push occupancy seen since [`enable_high_water`]
    /// (0 if tracking was never enabled). An upper bound — see the field
    /// comment on the cached-head approximation.
    ///
    /// [`enable_high_water`]: Producer::enable_high_water
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Number of free slots (approximate from the producer's view).
    pub fn free_slots(&self) -> usize {
        let ring = &*self.ring;
        let head = ring.head.load(Ordering::Acquire);
        let tail = ring.tail.load(Ordering::Relaxed);
        let used = if tail >= head { tail - head } else { tail + ring.capacity - head };
        ring.capacity - 1 - used
    }
}

impl<T> Consumer<T> {
    #[inline]
    fn nonempty(&mut self) -> bool {
        let ring = &*self.ring;
        let head = ring.head.load(Ordering::Relaxed);
        if head == self.cached_tail {
            self.cached_tail = ring.tail.load(Ordering::Acquire);
            if head == self.cached_tail {
                return false;
            }
        }
        true
    }

    /// Look at the oldest element without removing it.
    pub fn peek(&mut self) -> Option<&T> {
        if !self.nonempty() {
            return None;
        }
        let ring = &*self.ring;
        let head = ring.head.load(Ordering::Relaxed);
        // Safety: the slot was published by the producer's Release store,
        // observed by the Acquire load in `nonempty`, and will not be
        // overwritten until we advance `head`.
        Some(unsafe { (*ring.buf[head].get()).assume_init_ref() })
    }

    /// Remove and return the oldest element.
    pub fn pop(&mut self) -> Option<T> {
        if !self.nonempty() {
            return None;
        }
        let ring = &*self.ring;
        let head = ring.head.load(Ordering::Relaxed);
        // Safety: as in `peek`; ownership moves out and `head` advances so
        // the slot is never read again.
        let value = unsafe { (*ring.buf[head].get()).assume_init_read() };
        let next = if head + 1 == ring.capacity { 0 } else { head + 1 };
        ring.head.store(next, Ordering::Release);
        Some(value)
    }

    /// Move up to `max` of the oldest elements into `out` (appending, in
    /// FIFO order), advancing `head` once with a **single** `Release`
    /// store. Returns the number moved; 0 means the ring was empty.
    ///
    /// The mirror of [`Producer::push_batch`]: the producer observes the
    /// freed slots all at once, so per-item `head` traffic collapses to
    /// one store per drain.
    pub fn drain_into(&mut self, out: &mut Vec<T>, max: usize) -> usize {
        let ring = &*self.ring;
        let cap = ring.capacity;
        let head = ring.head.load(Ordering::Relaxed);
        let mut tail = self.cached_tail;
        let mut avail = if tail >= head { tail - head } else { tail + cap - head };
        if avail < max {
            tail = ring.tail.load(Ordering::Acquire);
            self.cached_tail = tail;
            avail = if tail >= head { tail - head } else { tail + cap - head };
        }
        let n = avail.min(max);
        if n == 0 {
            return 0;
        }
        out.reserve(n);
        let mut idx = head;
        for _ in 0..n {
            // Safety: slots up to the Acquire-observed `tail` were
            // published by the producer's Release store; ownership moves
            // out and `head` advances past each slot exactly once.
            out.push(unsafe { (*ring.buf[idx].get()).assume_init_read() });
            idx = if idx + 1 == cap { 0 } else { idx + 1 };
        }
        ring.head.store(idx, Ordering::Release);
        n
    }

    /// True if no element is currently visible.
    pub fn is_empty(&mut self) -> bool {
        !self.nonempty()
    }

    /// Number of elements currently visible to this consumer (refreshes
    /// the cached tail). The producer may append concurrently, so the
    /// count is a lower bound the moment it returns; in the deterministic
    /// backend (no concurrency) it is exact, and its scheduler uses it to
    /// tell a drained ring from one with undelivered work.
    pub fn len(&mut self) -> usize {
        let ring = &*self.ring;
        let head = ring.head.load(Ordering::Relaxed);
        self.cached_tail = ring.tail.load(Ordering::Acquire);
        let tail = self.cached_tail;
        if tail >= head {
            tail - head
        } else {
            tail + ring.capacity - head
        }
    }
}

impl<T> Drop for Ring<T> {
    fn drop(&mut self) {
        // Drop any items still in the queue.
        let mut head = *self.head.get_mut();
        let tail = *self.tail.get_mut();
        while head != tail {
            unsafe { (*self.buf[head].get()).assume_init_drop() };
            head = if head + 1 == self.capacity { 0 } else { head + 1 };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn fifo_order() {
        let (mut p, mut c) = channel(4);
        for i in 0..4 {
            p.try_push(i).unwrap();
        }
        assert!(p.try_push(99).is_err(), "ring full at capacity");
        for i in 0..4 {
            assert_eq!(c.peek(), Some(&i));
            assert_eq!(c.pop(), Some(i));
        }
        assert_eq!(c.pop(), None);
    }

    #[test]
    fn peek_does_not_consume() {
        let (mut p, mut c) = channel(2);
        p.try_push(7).unwrap();
        assert_eq!(c.peek(), Some(&7));
        assert_eq!(c.peek(), Some(&7));
        assert_eq!(c.pop(), Some(7));
        assert!(c.is_empty());
    }

    #[test]
    fn wraps_around() {
        let (mut p, mut c) = channel(3);
        for round in 0..10 {
            for i in 0..3 {
                p.try_push(round * 10 + i).unwrap();
            }
            for i in 0..3 {
                assert_eq!(c.pop(), Some(round * 10 + i));
            }
        }
    }

    #[test]
    fn free_slots_reporting() {
        let (mut p, mut c) = channel(4);
        assert_eq!(p.free_slots(), 4);
        p.try_push(1).unwrap();
        assert_eq!(p.free_slots(), 3);
        c.pop();
        assert_eq!(p.free_slots(), 4);
    }

    #[test]
    fn push_batch_publishes_prefix() {
        let (mut p, mut c) = channel(4);
        assert_eq!(p.push_batch(&[1, 2, 3]), 3);
        // Only one slot left: the batch is truncated to the free prefix.
        assert_eq!(p.push_batch(&[4, 5, 6]), 1);
        assert_eq!(p.push_batch(&[9]), 0, "full ring pushes nothing");
        for i in 1..=4 {
            assert_eq!(c.pop(), Some(i));
        }
        assert_eq!(c.pop(), None);
    }

    #[test]
    fn drain_into_respects_max_and_appends() {
        let (mut p, mut c) = channel(8);
        assert_eq!(p.push_batch(&[10, 11, 12, 13, 14]), 5);
        let mut out = vec![99];
        assert_eq!(c.drain_into(&mut out, 2), 2);
        assert_eq!(out, vec![99, 10, 11]);
        assert_eq!(c.drain_into(&mut out, usize::MAX), 3);
        assert_eq!(out, vec![99, 10, 11, 12, 13, 14]);
        assert_eq!(c.drain_into(&mut out, usize::MAX), 0);
    }

    #[test]
    fn batch_ops_wrap_around() {
        let (mut p, mut c) = channel(3);
        let mut out = Vec::new();
        for round in 0..10 {
            let vals = [round * 10, round * 10 + 1, round * 10 + 2];
            assert_eq!(p.push_batch(&vals), 3);
            out.clear();
            assert_eq!(c.drain_into(&mut out, usize::MAX), 3);
            assert_eq!(out, vals);
        }
    }

    #[test]
    fn batch_and_single_ops_interleave() {
        let (mut p, mut c) = channel(5);
        p.try_push(0).unwrap();
        assert_eq!(p.push_batch(&[1, 2]), 2);
        assert_eq!(c.pop(), Some(0));
        let mut out = Vec::new();
        assert_eq!(c.drain_into(&mut out, 1), 1);
        assert_eq!(out, vec![1]);
        p.try_push(3).unwrap();
        assert_eq!(c.peek(), Some(&2));
        out.clear();
        assert_eq!(c.drain_into(&mut out, usize::MAX), 2);
        assert_eq!(out, vec![2, 3]);
    }

    #[test]
    fn cross_thread_batch_stream() {
        let (mut p, mut c) = channel(16);
        let n = 100_000u64;
        let producer = thread::spawn(move || {
            let mut next = 0u64;
            while next < n {
                let hi = (next + 7).min(n);
                let chunk: Vec<u64> = (next..hi).collect();
                let mut sent = 0;
                while sent < chunk.len() {
                    let k = p.push_batch(&chunk[sent..]);
                    if k == 0 {
                        thread::yield_now();
                    }
                    sent += k;
                }
                next = hi;
            }
        });
        let mut expected = 0u64;
        let mut out = Vec::new();
        while expected < n {
            out.clear();
            if c.drain_into(&mut out, usize::MAX) == 0 {
                thread::yield_now();
                continue;
            }
            for &v in &out {
                assert_eq!(v, expected);
                expected += 1;
            }
        }
        producer.join().unwrap();
    }

    #[test]
    fn cross_thread_stream() {
        let (mut p, mut c) = channel(16);
        let n = 100_000u64;
        let producer = thread::spawn(move || {
            for i in 0..n {
                let mut v = i;
                loop {
                    match p.try_push(v) {
                        Ok(()) => break,
                        Err(back) => {
                            v = back;
                            thread::yield_now();
                        }
                    }
                }
            }
        });
        let mut expected = 0;
        while expected < n {
            if let Some(v) = c.pop() {
                assert_eq!(v, expected);
                expected += 1;
            } else {
                thread::yield_now();
            }
        }
        producer.join().unwrap();
    }

    #[test]
    fn high_water_tracks_only_when_enabled() {
        let (mut p, _c) = channel(8);
        p.try_push(1).unwrap();
        assert_eq!(p.push_batch(&[2, 3]), 2);
        assert_eq!(p.high_water(), 0, "disabled producer records nothing");
        p.enable_high_water();
        p.try_push(4).unwrap();
        assert_eq!(p.high_water(), 4);
        assert_eq!(p.push_batch(&[5, 6]), 2);
        assert_eq!(p.high_water(), 6);
        p.try_push(7).unwrap();
        assert_eq!(p.high_water(), 7, "high-water only ratchets upward");
    }

    #[test]
    fn drops_unconsumed_items() {
        use std::sync::atomic::AtomicUsize;
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        #[derive(Debug)]
        struct D;
        impl Drop for D {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::Relaxed);
            }
        }
        let (mut p, c) = channel(8);
        for _ in 0..5 {
            p.try_push(D).unwrap();
        }
        drop(c);
        drop(p);
        assert_eq!(DROPS.load(Ordering::Relaxed), 5);
    }
}
