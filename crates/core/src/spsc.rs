//! Bounded single-producer / single-consumer ring with consumer-side peek.
//!
//! The paper's communication structure is strictly SPSC: each core thread's
//! OutQ has the core as producer and the manager as consumer; each InQ has
//! the manager as producer and the core as consumer (§2.2). A dedicated
//! lock-free ring keeps the per-cycle InQ poll ("the core thread enquires
//! its InQ in every cycle") down to one atomic load, and `peek` lets the
//! consumer inspect a timestamped entry without committing to pop it — the
//! core leaves future-stamped replies queued until its local time reaches
//! them.
//!
//! Memory ordering follows the classic Lamport queue: the producer
//! publishes with a `Release` store of `tail`; the consumer acquires it, so
//! the slot write happens-before the read (Rust Atomics and Locks, ch. 5).

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

struct Ring<T> {
    buf: Box<[UnsafeCell<MaybeUninit<T>>]>,
    capacity: usize,
    head: AtomicUsize, // next index to pop (owned by consumer)
    tail: AtomicUsize, // next index to push (owned by producer)
}

// Safety: only one producer touches `tail`/writes slots, only one consumer
// touches `head`/reads slots; the Release/Acquire pair on `tail` (push) and
// `head` (pop) orders the slot accesses.
unsafe impl<T: Send> Send for Ring<T> {}
unsafe impl<T: Send> Sync for Ring<T> {}

/// Producer endpoint. Not `Clone`: exactly one producer may exist.
pub struct Producer<T> {
    ring: Arc<Ring<T>>,
    /// Cached head, refreshed only when the ring looks full.
    cached_head: usize,
}

/// Consumer endpoint. Not `Clone`: exactly one consumer may exist.
pub struct Consumer<T> {
    ring: Arc<Ring<T>>,
    /// Cached tail, refreshed only when the ring looks empty.
    cached_tail: usize,
}

/// Create a bounded SPSC channel holding at most `capacity` items.
pub fn channel<T>(capacity: usize) -> (Producer<T>, Consumer<T>) {
    assert!(capacity > 0);
    let buf: Vec<UnsafeCell<MaybeUninit<T>>> =
        (0..capacity + 1).map(|_| UnsafeCell::new(MaybeUninit::uninit())).collect();
    let ring = Arc::new(Ring {
        buf: buf.into_boxed_slice(),
        capacity: capacity + 1, // one slot sacrificed to distinguish full/empty
        head: AtomicUsize::new(0),
        tail: AtomicUsize::new(0),
    });
    (
        Producer { ring: ring.clone(), cached_head: 0 },
        Consumer { ring, cached_tail: 0 },
    )
}

impl<T> Producer<T> {
    /// Try to enqueue; returns the value back if the ring is full.
    pub fn try_push(&mut self, value: T) -> Result<(), T> {
        let ring = &*self.ring;
        let tail = ring.tail.load(Ordering::Relaxed);
        let next = if tail + 1 == ring.capacity { 0 } else { tail + 1 };
        if next == self.cached_head {
            self.cached_head = ring.head.load(Ordering::Acquire);
            if next == self.cached_head {
                return Err(value);
            }
        }
        // Safety: slot `tail` is not visible to the consumer until the
        // Release store below, and no other producer exists.
        unsafe { (*ring.buf[tail].get()).write(value) };
        ring.tail.store(next, Ordering::Release);
        Ok(())
    }

    /// Number of free slots (approximate from the producer's view).
    pub fn free_slots(&self) -> usize {
        let ring = &*self.ring;
        let head = ring.head.load(Ordering::Acquire);
        let tail = ring.tail.load(Ordering::Relaxed);
        let used = if tail >= head { tail - head } else { tail + ring.capacity - head };
        ring.capacity - 1 - used
    }
}

impl<T> Consumer<T> {
    #[inline]
    fn nonempty(&mut self) -> bool {
        let ring = &*self.ring;
        let head = ring.head.load(Ordering::Relaxed);
        if head == self.cached_tail {
            self.cached_tail = ring.tail.load(Ordering::Acquire);
            if head == self.cached_tail {
                return false;
            }
        }
        true
    }

    /// Look at the oldest element without removing it.
    pub fn peek(&mut self) -> Option<&T> {
        if !self.nonempty() {
            return None;
        }
        let ring = &*self.ring;
        let head = ring.head.load(Ordering::Relaxed);
        // Safety: the slot was published by the producer's Release store,
        // observed by the Acquire load in `nonempty`, and will not be
        // overwritten until we advance `head`.
        Some(unsafe { (*ring.buf[head].get()).assume_init_ref() })
    }

    /// Remove and return the oldest element.
    pub fn pop(&mut self) -> Option<T> {
        if !self.nonempty() {
            return None;
        }
        let ring = &*self.ring;
        let head = ring.head.load(Ordering::Relaxed);
        // Safety: as in `peek`; ownership moves out and `head` advances so
        // the slot is never read again.
        let value = unsafe { (*ring.buf[head].get()).assume_init_read() };
        let next = if head + 1 == ring.capacity { 0 } else { head + 1 };
        ring.head.store(next, Ordering::Release);
        Some(value)
    }

    /// True if no element is currently visible.
    pub fn is_empty(&mut self) -> bool {
        !self.nonempty()
    }
}

impl<T> Drop for Ring<T> {
    fn drop(&mut self) {
        // Drop any items still in the queue.
        let mut head = *self.head.get_mut();
        let tail = *self.tail.get_mut();
        while head != tail {
            unsafe { (*self.buf[head].get()).assume_init_drop() };
            head = if head + 1 == self.capacity { 0 } else { head + 1 };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn fifo_order() {
        let (mut p, mut c) = channel(4);
        for i in 0..4 {
            p.try_push(i).unwrap();
        }
        assert!(p.try_push(99).is_err(), "ring full at capacity");
        for i in 0..4 {
            assert_eq!(c.peek(), Some(&i));
            assert_eq!(c.pop(), Some(i));
        }
        assert_eq!(c.pop(), None);
    }

    #[test]
    fn peek_does_not_consume() {
        let (mut p, mut c) = channel(2);
        p.try_push(7).unwrap();
        assert_eq!(c.peek(), Some(&7));
        assert_eq!(c.peek(), Some(&7));
        assert_eq!(c.pop(), Some(7));
        assert!(c.is_empty());
    }

    #[test]
    fn wraps_around() {
        let (mut p, mut c) = channel(3);
        for round in 0..10 {
            for i in 0..3 {
                p.try_push(round * 10 + i).unwrap();
            }
            for i in 0..3 {
                assert_eq!(c.pop(), Some(round * 10 + i));
            }
        }
    }

    #[test]
    fn free_slots_reporting() {
        let (mut p, mut c) = channel(4);
        assert_eq!(p.free_slots(), 4);
        p.try_push(1).unwrap();
        assert_eq!(p.free_slots(), 3);
        c.pop();
        assert_eq!(p.free_slots(), 4);
    }

    #[test]
    fn cross_thread_stream() {
        let (mut p, mut c) = channel(16);
        let n = 100_000u64;
        let producer = thread::spawn(move || {
            for i in 0..n {
                let mut v = i;
                loop {
                    match p.try_push(v) {
                        Ok(()) => break,
                        Err(back) => {
                            v = back;
                            thread::yield_now();
                        }
                    }
                }
            }
        });
        let mut expected = 0;
        while expected < n {
            if let Some(v) = c.pop() {
                assert_eq!(v, expected);
                expected += 1;
            } else {
                thread::yield_now();
            }
        }
        producer.join().unwrap();
    }

    #[test]
    fn drops_unconsumed_items() {
        use std::sync::atomic::AtomicUsize;
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        #[derive(Debug)]
        struct D;
        impl Drop for D {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::Relaxed);
            }
        }
        let (mut p, c) = channel(8);
        for _ in 0..5 {
            p.try_push(D).unwrap();
        }
        drop(c);
        drop(p);
        assert_eq!(DROPS.load(Ordering::Relaxed), 5);
    }
}
