//! Workload synchronization objects (the paper's Table 1 API).
//!
//! Locks, barriers and semaphores are emulated "outside the simulator",
//! exactly as SlackSim emulated them outside SimpleScalar's PISA. The
//! objects live in a table owned by the **manager thread** and are mutated
//! only when the manager processes the corresponding `SyncOp` events from
//! the global queue. Consequently their behaviour is ordered by the active
//! slack scheme: under cycle-by-cycle simulation the acquisition order is
//! deterministic in (timestamp, core) order, while under bounded/unbounded
//! slack it follows arrival order — which is precisely how slack perturbs
//! workload behaviour (§3.2.3).
//!
//! Contended operations queue inside the table: `Lock` and `SemaWait`
//! withhold their replies until the resource is granted (FIFO in
//! processing order, which the active scheme controls — this is exactly
//! how slack perturbs lock-acquisition order, §3.2.3), and
//! `BarrierArrive` withholds replies until the last participant arrives.
//! The waiting core's clock is suspended and fast-forwarded to the grant
//! timestamp, so contended waiting costs simulated time computed in event
//! time rather than host time.

use crate::msg::SyncOp;
use sk_obs::Metrics;
use sk_snap::{Persist, Reader, SnapError, Writer};
use std::collections::VecDeque;
use std::sync::Arc;

/// Counters for the synchronization subsystem.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SyncStats {
    /// Successful lock acquisitions (immediate or queued).
    pub lock_acquisitions: u64,
    /// Lock requests that had to queue behind a holder.
    pub lock_waits: u64,
    /// Barrier episodes completed (all participants released).
    pub barrier_episodes: u64,
    /// Semaphore waits that had to queue.
    pub sema_waits: u64,
    /// Operations on objects that were never initialized (leniently
    /// auto-initialized, but counted as a workload smell).
    pub implicit_inits: u64,
    /// Unlocks by a core that does not hold the lock (workload bug or a
    /// slack-induced reordering; tolerated).
    pub unlock_mismatches: u64,
}

#[derive(Clone, Debug, Default)]
struct LockObj {
    initialized: bool,
    held_by: Option<usize>,
    waiters: std::collections::VecDeque<(usize, u64)>,
}

#[derive(Clone, Debug, Default)]
struct BarrierObj {
    initialized: bool,
    count: u32,
    /// Cores currently waiting, with the timestamp of their arrival event.
    arrived: Vec<(usize, u64)>,
}

#[derive(Clone, Debug, Default)]
struct SemaObj {
    initialized: bool,
    count: i64,
    waiters: std::collections::VecDeque<(usize, u64)>,
}

/// Result of applying one [`SyncOp`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SyncOutcome {
    /// Immediate reply to the requesting core (`None` for a withheld
    /// reply).
    pub reply: Option<i64>,
    /// Cores to release: `(core, value, request_ts)`. `request_ts` is the
    /// timestamp of the released core's own blocking request, so the
    /// manager can stamp the grant in the *waiter's* time frame under
    /// eager schemes (the paper's self-paced spin semantics, §3.2.1's
    /// temporal-distortion argument) and causally under ordered schemes.
    pub releases: Vec<(usize, i64, u64)>,
}

impl SyncOutcome {
    fn reply(v: i64) -> Self {
        SyncOutcome { reply: Some(v), releases: vec![] }
    }
}

/// The manager-owned table of synchronization objects.
#[derive(Clone, Debug, Default)]
pub struct SyncTable {
    locks: Vec<LockObj>,
    barriers: Vec<BarrierObj>,
    semas: Vec<SemaObj>,
    /// Counters.
    pub stats: SyncStats,
    /// Optional telemetry hub: wait-time histograms are fed as releases
    /// happen. Not persisted — the engine re-attaches after a restore.
    obs: Option<Arc<Metrics>>,
}

fn ensure<T: Default>(v: &mut Vec<T>, id: u32) -> &mut T {
    let id = id as usize;
    if v.len() <= id {
        v.resize_with(id + 1, T::default);
    }
    &mut v[id]
}

impl SyncTable {
    /// Empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Attach a telemetry hub (wait-time histograms).
    pub fn set_obs(&mut self, obs: Arc<Metrics>) {
        self.obs = Some(obs);
    }

    /// Record how long released waiters were held: simulated cycles from
    /// each waiter's blocking request to the releasing event.
    fn record_waits(&self, barrier: bool, release_ts: u64, releases: &[(usize, i64, u64)]) {
        if let Some(obs) = &self.obs {
            let h = if barrier { &obs.manager.barrier_wait } else { &obs.manager.lock_wait };
            for &(_, _, req_ts) in releases {
                h.record(release_ts.saturating_sub(req_ts));
            }
        }
    }

    /// Apply one operation from `core`, stamped `ts`.
    ///
    /// `Spawn` is not handled here — thread placement belongs to the
    /// engine, which owns core occupancy.
    pub fn apply(&mut self, core: usize, op: SyncOp, ts: u64) -> SyncOutcome {
        let out = self.apply_inner(core, op, ts);
        if !out.releases.is_empty() {
            self.record_waits(matches!(op, SyncOp::BarrierArrive { .. }), ts, &out.releases);
        }
        out
    }

    fn apply_inner(&mut self, core: usize, op: SyncOp, ts: u64) -> SyncOutcome {
        match op {
            SyncOp::InitLock { id } => {
                let l = ensure(&mut self.locks, id);
                *l = LockObj { initialized: true, held_by: None, waiters: Default::default() };
                SyncOutcome::reply(0)
            }
            SyncOp::Lock { id } => {
                let implicit = {
                    let l = ensure(&mut self.locks, id);
                    !l.initialized
                };
                if implicit {
                    self.stats.implicit_inits += 1;
                    self.locks[id as usize].initialized = true;
                }
                let l = &mut self.locks[id as usize];
                if l.held_by.is_none() {
                    l.held_by = Some(core);
                    self.stats.lock_acquisitions += 1;
                    SyncOutcome::reply(1)
                } else {
                    l.waiters.push_back((core, ts));
                    self.stats.lock_waits += 1;
                    SyncOutcome { reply: None, releases: vec![] }
                }
            }
            SyncOp::Unlock { id } => {
                let l = ensure(&mut self.locks, id);
                if l.held_by != Some(core) {
                    self.stats.unlock_mismatches += 1;
                    // Release anyway: a slack-reordered unlock must not
                    // wedge the workload.
                }
                match l.waiters.pop_front() {
                    Some((next, req_ts)) => {
                        l.held_by = Some(next);
                        self.stats.lock_acquisitions += 1;
                        SyncOutcome { reply: Some(0), releases: vec![(next, 1, req_ts)] }
                    }
                    None => {
                        l.held_by = None;
                        SyncOutcome::reply(0)
                    }
                }
            }
            SyncOp::InitBarrier { id, count } => {
                let b = ensure(&mut self.barriers, id);
                *b = BarrierObj { initialized: true, count, arrived: vec![] };
                SyncOutcome::reply(0)
            }
            SyncOp::BarrierArrive { id } => {
                let implicit = {
                    let b = ensure(&mut self.barriers, id);
                    !b.initialized
                };
                if implicit {
                    self.stats.implicit_inits += 1;
                    let b = &mut self.barriers[id as usize];
                    b.initialized = true;
                    b.count = u32::MAX; // an uninitialized barrier never opens
                }
                let b = &mut self.barriers[id as usize];
                debug_assert!(
                    !b.arrived.iter().any(|&(c, _)| c == core),
                    "core {core} arrived twice at barrier {id}"
                );
                b.arrived.push((core, ts));
                if b.arrived.len() as u32 >= b.count {
                    let releases = std::mem::take(&mut b.arrived)
                        .into_iter()
                        .map(|(c, arr_ts)| (c, 1, arr_ts))
                        .collect();
                    self.stats.barrier_episodes += 1;
                    // The last arriver is among `releases`; no direct reply.
                    SyncOutcome { reply: None, releases }
                } else {
                    SyncOutcome { reply: None, releases: vec![] }
                }
            }
            SyncOp::InitSema { id, count } => {
                let s = ensure(&mut self.semas, id);
                *s = SemaObj { initialized: true, count, waiters: Default::default() };
                SyncOutcome::reply(0)
            }
            SyncOp::SemaWait { id } => {
                let implicit = {
                    let s = ensure(&mut self.semas, id);
                    !s.initialized
                };
                if implicit {
                    self.stats.implicit_inits += 1;
                    self.semas[id as usize].initialized = true;
                }
                let s = &mut self.semas[id as usize];
                if s.count > 0 {
                    s.count -= 1;
                    SyncOutcome::reply(1)
                } else {
                    s.waiters.push_back((core, ts));
                    self.stats.sema_waits += 1;
                    SyncOutcome { reply: None, releases: vec![] }
                }
            }
            SyncOp::SemaSignal { id } => {
                let implicit = {
                    let s = ensure(&mut self.semas, id);
                    !s.initialized
                };
                if implicit {
                    self.stats.implicit_inits += 1;
                    self.semas[id as usize].initialized = true;
                }
                let s = &mut self.semas[id as usize];
                match s.waiters.pop_front() {
                    Some((next, req_ts)) => {
                        SyncOutcome { reply: Some(0), releases: vec![(next, 1, req_ts)] }
                    }
                    None => {
                        s.count += 1;
                        SyncOutcome::reply(0)
                    }
                }
            }
            SyncOp::Spawn { .. } => unreachable!("Spawn is handled by the engine"),
            SyncOp::Cas { .. } => unreachable!("Cas is applied by the manager against memory"),
        }
    }

    /// Is any core currently waiting at a barrier? (deadlock diagnostics)
    pub fn barrier_waiters(&self) -> usize {
        self.barriers.iter().map(|b| b.arrived.len()).sum()
    }

    /// Total cores queued on any sync object — withheld lock grants,
    /// semaphore waits and barrier arrivals. The deterministic backend's
    /// scheduler reads this to tell "everyone is legitimately waiting on
    /// a release the manager still owes" from a genuine deadlock.
    pub fn blocked_waiters(&self) -> usize {
        self.locks.iter().map(|l| l.waiters.len()).sum::<usize>()
            + self.semas.iter().map(|s| s.waiters.len()).sum::<usize>()
            + self.barrier_waiters()
    }

    /// Current holder of lock `id`, if held (diagnostics).
    pub fn lock_holder(&self, id: u32) -> Option<usize> {
        self.locks.get(id as usize).and_then(|l| l.held_by)
    }
}

fn save_queue(q: &VecDeque<(usize, u64)>, w: &mut Writer) {
    w.put_usize(q.len());
    for &(core, ts) in q {
        w.put_usize(core);
        w.put_u64(ts);
    }
}

fn load_queue(r: &mut Reader<'_>) -> Result<VecDeque<(usize, u64)>, SnapError> {
    let n = r.get_count(16)?;
    let mut q = VecDeque::with_capacity(n);
    for _ in 0..n {
        q.push_back((r.get_usize()?, r.get_u64()?));
    }
    Ok(q)
}

impl Persist for LockObj {
    fn save(&self, w: &mut Writer) {
        w.put_bool(self.initialized);
        self.held_by.save(w);
        save_queue(&self.waiters, w);
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        Ok(LockObj {
            initialized: r.get_bool()?,
            held_by: Option::<usize>::load(r)?,
            waiters: load_queue(r)?,
        })
    }
}

impl Persist for BarrierObj {
    fn save(&self, w: &mut Writer) {
        w.put_bool(self.initialized);
        w.put_u32(self.count);
        w.put_usize(self.arrived.len());
        for &(core, ts) in &self.arrived {
            w.put_usize(core);
            w.put_u64(ts);
        }
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        let initialized = r.get_bool()?;
        let count = r.get_u32()?;
        let n = r.get_count(16)?;
        let mut arrived = Vec::with_capacity(n);
        for _ in 0..n {
            arrived.push((r.get_usize()?, r.get_u64()?));
        }
        Ok(BarrierObj { initialized, count, arrived })
    }
}

impl Persist for SemaObj {
    fn save(&self, w: &mut Writer) {
        w.put_bool(self.initialized);
        w.put_i64(self.count);
        save_queue(&self.waiters, w);
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        Ok(SemaObj { initialized: r.get_bool()?, count: r.get_i64()?, waiters: load_queue(r)? })
    }
}

impl Persist for SyncStats {
    fn save(&self, w: &mut Writer) {
        w.put_u64(self.lock_acquisitions);
        w.put_u64(self.lock_waits);
        w.put_u64(self.barrier_episodes);
        w.put_u64(self.sema_waits);
        w.put_u64(self.implicit_inits);
        w.put_u64(self.unlock_mismatches);
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        Ok(SyncStats {
            lock_acquisitions: r.get_u64()?,
            lock_waits: r.get_u64()?,
            barrier_episodes: r.get_u64()?,
            sema_waits: r.get_u64()?,
            implicit_inits: r.get_u64()?,
            unlock_mismatches: r.get_u64()?,
        })
    }
}

/// Wait queues (and therefore future grant order) are part of the state:
/// a restored run replays contended grants exactly as the original would.
impl Persist for SyncTable {
    fn save(&self, w: &mut Writer) {
        self.locks.save(w);
        self.barriers.save(w);
        self.semas.save(w);
        self.stats.save(w);
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        Ok(SyncTable {
            locks: Vec::load(r)?,
            barriers: Vec::load(r)?,
            semas: Vec::load(r)?,
            stats: SyncStats::load(r)?,
            obs: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_grants_immediately_when_free() {
        let mut t = SyncTable::new();
        t.apply(0, SyncOp::InitLock { id: 0 }, 0);
        assert_eq!(t.apply(1, SyncOp::Lock { id: 0 }, 5).reply, Some(1));
        assert_eq!(t.lock_holder(0), Some(1));
        assert_eq!(t.stats.lock_acquisitions, 1);
    }

    #[test]
    fn contended_lock_queues_and_grants_on_unlock() {
        let mut t = SyncTable::new();
        t.apply(0, SyncOp::InitLock { id: 0 }, 0);
        assert_eq!(t.apply(1, SyncOp::Lock { id: 0 }, 5).reply, Some(1));
        // Core 2 queues: no reply yet.
        let out = t.apply(2, SyncOp::Lock { id: 0 }, 6);
        assert_eq!(out, SyncOutcome { reply: None, releases: vec![] });
        assert_eq!(t.stats.lock_waits, 1);
        // Unlock hands the lock straight to the waiter.
        let out = t.apply(1, SyncOp::Unlock { id: 0 }, 9);
        assert_eq!(out.reply, Some(0));
        assert_eq!(out.releases, vec![(2, 1, 6)]);
        assert_eq!(t.lock_holder(0), Some(2));
        assert_eq!(t.stats.lock_acquisitions, 2);
        assert_eq!(t.stats.unlock_mismatches, 0);
    }

    #[test]
    fn lock_waiters_are_granted_fifo() {
        let mut t = SyncTable::new();
        t.apply(0, SyncOp::InitLock { id: 0 }, 0);
        t.apply(0, SyncOp::Lock { id: 0 }, 1);
        t.apply(1, SyncOp::Lock { id: 0 }, 2);
        t.apply(2, SyncOp::Lock { id: 0 }, 3);
        let out = t.apply(0, SyncOp::Unlock { id: 0 }, 4);
        assert_eq!(out.releases, vec![(1, 1, 2)]);
        let out = t.apply(1, SyncOp::Unlock { id: 0 }, 5);
        assert_eq!(out.releases, vec![(2, 1, 3)]);
        let out = t.apply(2, SyncOp::Unlock { id: 0 }, 6);
        assert!(out.releases.is_empty());
        assert_eq!(t.lock_holder(0), None);
    }

    #[test]
    fn unlock_by_non_holder_is_counted_but_tolerated() {
        let mut t = SyncTable::new();
        t.apply(0, SyncOp::InitLock { id: 3 }, 0);
        t.apply(0, SyncOp::Lock { id: 3 }, 1);
        t.apply(5, SyncOp::Unlock { id: 3 }, 2);
        assert_eq!(t.stats.unlock_mismatches, 1);
        assert_eq!(t.lock_holder(3), None);
    }

    #[test]
    fn barrier_releases_all_on_last_arrival() {
        let mut t = SyncTable::new();
        t.apply(0, SyncOp::InitBarrier { id: 0, count: 3 }, 0);
        assert_eq!(
            t.apply(0, SyncOp::BarrierArrive { id: 0 }, 10),
            SyncOutcome { reply: None, releases: vec![] }
        );
        assert_eq!(
            t.apply(2, SyncOp::BarrierArrive { id: 0 }, 11),
            SyncOutcome { reply: None, releases: vec![] }
        );
        assert_eq!(t.barrier_waiters(), 2);
        let out = t.apply(1, SyncOp::BarrierArrive { id: 0 }, 15);
        assert_eq!(out.reply, None);
        let mut cores: Vec<usize> = out.releases.iter().map(|&(c, _, _)| c).collect();
        cores.sort_unstable();
        assert_eq!(cores, vec![0, 1, 2]);
        assert_eq!(t.barrier_waiters(), 0);
        assert_eq!(t.stats.barrier_episodes, 1);
    }

    #[test]
    fn barrier_is_reusable_across_episodes() {
        let mut t = SyncTable::new();
        t.apply(0, SyncOp::InitBarrier { id: 1, count: 2 }, 0);
        for episode in 0..3 {
            t.apply(0, SyncOp::BarrierArrive { id: 1 }, episode * 10);
            let out = t.apply(1, SyncOp::BarrierArrive { id: 1 }, episode * 10 + 1);
            assert_eq!(out.releases.len(), 2, "episode {episode}");
        }
        assert_eq!(t.stats.barrier_episodes, 3);
    }

    #[test]
    fn semaphore_counts_and_queues() {
        let mut t = SyncTable::new();
        t.apply(0, SyncOp::InitSema { id: 0, count: 2 }, 0);
        assert_eq!(t.apply(0, SyncOp::SemaWait { id: 0 }, 1).reply, Some(1));
        assert_eq!(t.apply(1, SyncOp::SemaWait { id: 0 }, 2).reply, Some(1));
        // Count exhausted: core 2 queues.
        let out = t.apply(2, SyncOp::SemaWait { id: 0 }, 3);
        assert_eq!(out, SyncOutcome { reply: None, releases: vec![] });
        assert_eq!(t.stats.sema_waits, 1);
        // A signal hands the unit straight to the waiter.
        let out = t.apply(0, SyncOp::SemaSignal { id: 0 }, 4);
        assert_eq!(out.releases, vec![(2, 1, 3)]);
        // No waiter: the count accumulates.
        t.apply(0, SyncOp::SemaSignal { id: 0 }, 5);
        assert_eq!(t.apply(3, SyncOp::SemaWait { id: 0 }, 6).reply, Some(1));
    }

    #[test]
    fn implicit_initialization_is_lenient_but_counted() {
        let mut t = SyncTable::new();
        assert_eq!(t.apply(0, SyncOp::Lock { id: 9 }, 0).reply, Some(1));
        t.apply(0, SyncOp::SemaSignal { id: 4 }, 0);
        assert_eq!(t.apply(1, SyncOp::SemaWait { id: 4 }, 1).reply, Some(1));
        assert_eq!(t.stats.implicit_inits, 2);
    }

    #[test]
    fn ids_are_independent_namespaces() {
        let mut t = SyncTable::new();
        t.apply(0, SyncOp::InitLock { id: 0 }, 0);
        t.apply(0, SyncOp::InitSema { id: 0, count: 1 }, 0);
        t.apply(0, SyncOp::Lock { id: 0 }, 1);
        // Same id, different namespace: sema still available.
        assert_eq!(t.apply(1, SyncOp::SemaWait { id: 0 }, 2).reply, Some(1));
    }
}
