//! Target-machine and simulation configuration.

use sk_isa::FuClass;
use sk_mem::MemConfig;
use sk_snap::{Persist, Reader, SnapError, Writer};

/// Which core timing model simulates each target core.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CoreModel {
    /// 4-wide out-of-order core, NetBurst-like (paper §2.2/§4.1): values
    /// are fetched just before execution, instructions execute when they
    /// reach an execution unit.
    OutOfOrder,
    /// Single-issue in-order core that stalls on cache misses. Used for
    /// ablations ("the simulation continuation can be as simple as just
    /// incrementing the local clock", §2.2).
    InOrder,
}

/// Microarchitectural parameters of one target core.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CoreConfig {
    /// Timing model.
    pub model: CoreModel,
    /// Instructions fetched per cycle.
    pub fetch_width: usize,
    /// Instructions issued to functional units per cycle.
    pub issue_width: usize,
    /// Instructions committed per cycle.
    pub commit_width: usize,
    /// Reorder-buffer entries ("64 in-flight instructions", §4.1).
    pub rob_entries: usize,
    /// Load/store-queue entries.
    pub lsq_entries: usize,
    /// Fetch-queue entries.
    pub fetch_queue: usize,
    /// Post-commit store-buffer entries.
    pub store_buffer: usize,
    /// Bimodal branch-predictor table size (entries, power of two).
    pub bpred_entries: usize,
    /// Pipeline refill penalty after a branch misprediction, cycles.
    pub mispredict_penalty: u64,
    /// Reserved: spin interval of the legacy retry-based lock emulation
    /// (contended sync ops are now queued at the manager and grant in
    /// event time, so nothing spins).
    pub spin_interval: u64,
}

impl CoreConfig {
    /// The paper's target core: 4-way OoO with 64 in-flight instructions.
    pub fn paper_ooo() -> Self {
        CoreConfig {
            model: CoreModel::OutOfOrder,
            fetch_width: 4,
            issue_width: 4,
            commit_width: 4,
            rob_entries: 64,
            lsq_entries: 32,
            fetch_queue: 8,
            store_buffer: 8,
            bpred_entries: 2048,
            mispredict_penalty: 5,
            spin_interval: 10,
        }
    }

    /// A simple in-order core (ablation / fast simulation).
    pub fn simple_inorder() -> Self {
        CoreConfig { model: CoreModel::InOrder, ..Self::paper_ooo() }
    }

    /// Execution latency of a functional-unit class, cycles.
    pub fn fu_latency(&self, class: FuClass) -> u64 {
        match class {
            FuClass::IntAlu | FuClass::Branch | FuClass::Jump | FuClass::Nop => 1,
            FuClass::IntMul => 3,
            FuClass::IntDiv => 20,
            FuClass::FpAdd => 4,
            FuClass::FpMul => 4,
            FuClass::FpDiv => 12,
            FuClass::FpSqrt => 20,
            FuClass::Load => 1,  // address generation; memory adds on top
            FuClass::Store => 1, // address generation
            FuClass::Syscall => 1,
        }
    }

    /// Number of functional units of each class the issue stage can use
    /// per cycle.
    pub fn fu_count(&self, class: FuClass) -> usize {
        match class {
            FuClass::IntAlu | FuClass::Branch | FuClass::Jump | FuClass::Nop => 2,
            FuClass::IntMul | FuClass::IntDiv => 1,
            FuClass::FpAdd | FuClass::FpMul => 2,
            FuClass::FpDiv | FuClass::FpSqrt => 1,
            FuClass::Load | FuClass::Store => 2,
            FuClass::Syscall => 1,
        }
    }

    /// Whether a class's unit pipelines back-to-back operations.
    pub fn fu_pipelined(&self, class: FuClass) -> bool {
        !matches!(class, FuClass::IntDiv | FuClass::FpDiv | FuClass::FpSqrt)
    }
}

/// A structurally impossible [`TargetConfig`], caught by
/// [`TargetConfig::validate`]. Typed (like `SchemeParseError`) so servers
/// building configurations from untrusted request bodies can reject a bad
/// one with a clean 4xx instead of hitting an `expect` in the engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// `n_cores` outside the supported 1..=256 range.
    CoreCountOutOfRange { n_cores: usize },
    /// More memory shards than L2 banks to partition across them.
    ShardsExceedBanks { mem_shards: usize, n_banks: usize },
    /// A core pipeline width or the ROB is zero.
    ZeroCoreResource,
    /// Zero MSHRs or a zero-entry store buffer.
    ZeroMemResource,
    /// SPSC ring capacity below the minimum of 2 entries.
    QueueCapacityTooSmall { queue_capacity: usize },
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::CoreCountOutOfRange { n_cores } => {
                write!(f, "n_cores {n_cores} out of range 1..=256")
            }
            ConfigError::ShardsExceedBanks { mem_shards, n_banks } => {
                write!(f, "mem_shards {mem_shards} exceeds the {n_banks} L2 banks")
            }
            ConfigError::ZeroCoreResource => write!(f, "core widths/ROB must be nonzero"),
            ConfigError::ZeroMemResource => write!(f, "MSHRs and store buffer must be nonzero"),
            ConfigError::QueueCapacityTooSmall { queue_capacity } => {
                write!(f, "queue_capacity {queue_capacity} must be at least 2")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// When the simulation stops.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StopCondition {
    /// All workload threads called `exit`.
    ProgramExit,
    /// Stop once this many instructions have been committed inside the
    /// region of interest, across all cores (the paper simulates 100 M).
    RoiInstructions(u64),
}

/// Full configuration of one simulation run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TargetConfig {
    /// Number of target cores (8 throughout the paper's evaluation).
    pub n_cores: usize,
    /// Per-core microarchitecture.
    pub core: CoreConfig,
    /// Memory hierarchy.
    pub mem: MemConfig,
    /// Stop condition.
    pub stop: StopCondition,
    /// Hard safety limit on simulated cycles (deadlock backstop).
    pub max_cycles: u64,
    /// Detect conflicting-access reorderings (paper §3.2.3, Fig. 7).
    pub track_workload_violations: bool,
    /// Compensate detected Store/Load reorderings by fast-forwarding
    /// (paper §3.2.3; SlackSim itself did *not* compensate — off by
    /// default to match).
    pub fast_forward_compensation: bool,
    /// Record a per-cycle work trace for the virtual-host model.
    pub record_trace: bool,
    /// Number of sharded memory-manager threads (0 = the classic single
    /// manager of the paper's Figure 1). The paper's §2.2 notes the
    /// manager can be split "into several threads" if it bottlenecks;
    /// shards partition the directory by L2 bank.
    pub mem_shards: usize,
    /// Capacity of every SPSC ring (InQs, OutQs and shard rings), in
    /// entries. Sizes the batch the transport can move per ring operation;
    /// a full ring makes the producer yield until the consumer drains.
    pub queue_capacity: usize,
    /// Dispatch fused superblock runs on the fast path (in-order cores
    /// and the architectural interpreter). Purely a host-speed knob: the
    /// simulated timing, stats and report fingerprint are bit-identical
    /// either way (`--no-superblocks` is the escape hatch / A-B control).
    pub superblocks: bool,
}

impl TargetConfig {
    /// The paper's evaluated target: 8-core CMP, 4-way OoO cores, 16 KB
    /// L1s, 256 KB shared NUCA L2, directory MESI.
    pub fn paper_8core() -> Self {
        TargetConfig {
            n_cores: 8,
            core: CoreConfig::paper_ooo(),
            mem: MemConfig::paper_8core(),
            stop: StopCondition::ProgramExit,
            max_cycles: 2_000_000_000,
            track_workload_violations: false,
            fast_forward_compensation: false,
            record_trace: false,
            mem_shards: 0,
            queue_capacity: 4096,
            superblocks: true,
        }
    }

    /// A small configuration for unit tests: 2–4 simple cores.
    pub fn small(n_cores: usize) -> Self {
        TargetConfig {
            n_cores,
            core: CoreConfig::simple_inorder(),
            mem: MemConfig::paper_8core(),
            stop: StopCondition::ProgramExit,
            max_cycles: 50_000_000,
            track_workload_violations: false,
            fast_forward_compensation: false,
            record_trace: false,
            mem_shards: 0,
            queue_capacity: 4096,
            superblocks: true,
        }
    }

    /// A many-core scale-out target (64/128/256 cores): simple in-order
    /// cores over the paper memory hierarchy widened to one NUCA bank per
    /// core ([`MemConfig::many_core`]), so directory banks, interconnect
    /// channels and manager shards all scale with the core count.
    pub fn many_core(n_cores: usize) -> Self {
        TargetConfig { mem: MemConfig::many_core(n_cores), ..Self::small(n_cores) }
    }

    /// The critical latency of this target (bounds safe quantum/slack).
    pub fn critical_latency(&self) -> u64 {
        self.mem.critical_latency()
    }

    /// Structural sanity checks, run once per simulation.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.n_cores == 0 || self.n_cores > 256 {
            return Err(ConfigError::CoreCountOutOfRange { n_cores: self.n_cores });
        }
        if self.mem_shards > self.mem.n_banks {
            return Err(ConfigError::ShardsExceedBanks {
                mem_shards: self.mem_shards,
                n_banks: self.mem.n_banks,
            });
        }
        if self.core.rob_entries == 0 || self.core.fetch_width == 0 || self.core.issue_width == 0 {
            return Err(ConfigError::ZeroCoreResource);
        }
        if self.mem.mshrs == 0 || self.core.store_buffer == 0 {
            return Err(ConfigError::ZeroMemResource);
        }
        if self.queue_capacity < 2 {
            return Err(ConfigError::QueueCapacityTooSmall { queue_capacity: self.queue_capacity });
        }
        Ok(())
    }
}

impl Persist for CoreModel {
    fn save(&self, w: &mut Writer) {
        w.put_u8(match self {
            CoreModel::OutOfOrder => 0,
            CoreModel::InOrder => 1,
        });
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        match r.get_u8()? {
            0 => Ok(CoreModel::OutOfOrder),
            1 => Ok(CoreModel::InOrder),
            t => Err(SnapError::Corrupt(format!("core-model tag {t}"))),
        }
    }
}

impl Persist for CoreConfig {
    fn save(&self, w: &mut Writer) {
        self.model.save(w);
        w.put_usize(self.fetch_width);
        w.put_usize(self.issue_width);
        w.put_usize(self.commit_width);
        w.put_usize(self.rob_entries);
        w.put_usize(self.lsq_entries);
        w.put_usize(self.fetch_queue);
        w.put_usize(self.store_buffer);
        w.put_usize(self.bpred_entries);
        w.put_u64(self.mispredict_penalty);
        w.put_u64(self.spin_interval);
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        let cfg = CoreConfig {
            model: CoreModel::load(r)?,
            fetch_width: r.get_usize()?,
            issue_width: r.get_usize()?,
            commit_width: r.get_usize()?,
            rob_entries: r.get_usize()?,
            lsq_entries: r.get_usize()?,
            fetch_queue: r.get_usize()?,
            store_buffer: r.get_usize()?,
            bpred_entries: r.get_usize()?,
            mispredict_penalty: r.get_u64()?,
            spin_interval: r.get_u64()?,
        };
        // The predictor constructor asserts this; turn it into a clean
        // load error instead of a panic on a corrupt snapshot.
        if !cfg.bpred_entries.is_power_of_two() {
            return Err(SnapError::Corrupt(format!(
                "bpred_entries {} not a power of two",
                cfg.bpred_entries
            )));
        }
        Ok(cfg)
    }
}

impl Persist for StopCondition {
    fn save(&self, w: &mut Writer) {
        match *self {
            StopCondition::ProgramExit => w.put_u8(0),
            StopCondition::RoiInstructions(n) => {
                w.put_u8(1);
                w.put_u64(n);
            }
        }
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        match r.get_u8()? {
            0 => Ok(StopCondition::ProgramExit),
            1 => Ok(StopCondition::RoiInstructions(r.get_u64()?)),
            t => Err(SnapError::Corrupt(format!("stop-condition tag {t}"))),
        }
    }
}

/// Loading runs [`TargetConfig::validate`], so a snapshot can never smuggle
/// in a structurally impossible target.
impl Persist for TargetConfig {
    fn save(&self, w: &mut Writer) {
        w.put_usize(self.n_cores);
        self.core.save(w);
        self.mem.save(w);
        self.stop.save(w);
        w.put_u64(self.max_cycles);
        w.put_bool(self.track_workload_violations);
        w.put_bool(self.fast_forward_compensation);
        w.put_bool(self.record_trace);
        w.put_usize(self.mem_shards);
        w.put_usize(self.queue_capacity);
        w.put_bool(self.superblocks);
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        let cfg = TargetConfig {
            n_cores: r.get_usize()?,
            core: CoreConfig::load(r)?,
            mem: MemConfig::load(r)?,
            stop: StopCondition::load(r)?,
            max_cycles: r.get_u64()?,
            track_workload_violations: r.get_bool()?,
            fast_forward_compensation: r.get_bool()?,
            record_trace: r.get_bool()?,
            mem_shards: r.get_usize()?,
            queue_capacity: r.get_usize()?,
            superblocks: r.get_bool()?,
        };
        cfg.validate().map_err(|e| SnapError::Corrupt(e.to_string()))?;
        Ok(cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_matches_section_4_1() {
        let t = TargetConfig::paper_8core();
        assert_eq!(t.n_cores, 8);
        assert_eq!(t.core.rob_entries, 64);
        assert_eq!(t.core.issue_width, 4);
        assert_eq!(t.mem.l1d.size_bytes, 16 * 1024);
        assert_eq!(t.critical_latency(), 10);
    }

    #[test]
    fn queue_capacity_is_validated() {
        let mut t = TargetConfig::small(2);
        assert_eq!(t.queue_capacity, 4096);
        assert!(t.validate().is_ok());
        t.queue_capacity = 2;
        assert!(t.validate().is_ok());
        t.queue_capacity = 1;
        assert_eq!(t.validate(), Err(ConfigError::QueueCapacityTooSmall { queue_capacity: 1 }));
        t.queue_capacity = 0;
        assert!(t.validate().is_err());
    }

    #[test]
    fn many_core_targets_validate() {
        for n in [64, 128, 256] {
            let t = TargetConfig::many_core(n);
            assert_eq!(t.n_cores, n);
            assert_eq!(t.mem.n_banks, n);
            assert!(t.validate().is_ok(), "{n}-core target must validate");
        }
    }

    #[test]
    fn validation_errors_are_typed() {
        let mut t = TargetConfig::small(2);
        t.n_cores = 257;
        assert_eq!(t.validate(), Err(ConfigError::CoreCountOutOfRange { n_cores: 257 }));
        let mut t = TargetConfig::small(2);
        t.mem_shards = t.mem.n_banks + 1;
        assert!(matches!(t.validate(), Err(ConfigError::ShardsExceedBanks { .. })));
        let mut t = TargetConfig::small(2);
        t.core.rob_entries = 0;
        assert_eq!(t.validate(), Err(ConfigError::ZeroCoreResource));
        let mut t = TargetConfig::small(2);
        t.core.store_buffer = 0;
        assert_eq!(t.validate(), Err(ConfigError::ZeroMemResource));
        // Display stays human-actionable for API error bodies.
        assert!(ConfigError::ZeroCoreResource.to_string().contains("nonzero"));
    }

    #[test]
    fn fu_latencies_are_positive_and_classified() {
        let c = CoreConfig::paper_ooo();
        for class in [
            FuClass::IntAlu,
            FuClass::IntMul,
            FuClass::IntDiv,
            FuClass::FpAdd,
            FuClass::FpMul,
            FuClass::FpDiv,
            FuClass::FpSqrt,
            FuClass::Load,
            FuClass::Store,
            FuClass::Branch,
            FuClass::Jump,
            FuClass::Syscall,
            FuClass::Nop,
        ] {
            assert!(c.fu_latency(class) >= 1);
            assert!(c.fu_count(class) >= 1);
        }
        assert!(!c.fu_pipelined(FuClass::IntDiv));
        assert!(c.fu_pipelined(FuClass::IntMul));
    }
}
