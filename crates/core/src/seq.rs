//! The sequential reference engine.
//!
//! All target cores are simulated round-robin, one cycle at a time, in a
//! single host thread, with events processed cycle-by-cycle in
//! (timestamp, core, sequence) order. This is:
//!
//! * the paper's **baseline**: "the instruction throughput of the
//!   cycle-by-cycle simulations ... when all threads are executed by one
//!   single host core" (Table 2's KIPS column, and the denominator of
//!   every speedup in Figure 8);
//! * the **accuracy gold standard**: it is bit-deterministic, and the
//!   parallel engine under the cycle-by-cycle scheme must match its cycle
//!   counts exactly on data-race-free workloads (asserted by integration
//!   tests).

use crate::config::{StopCondition, TargetConfig};
use crate::core_thread::CoreOutput;
use crate::engine::{assemble_report, plumb, violation_report, Plumbing};
use crate::scheme::Scheme;
use crate::stats::{EngineStats, SimReport};
use crate::uncore::Uncore;
use sk_isa::Program;
use std::sync::atomic::Ordering;
use std::time::Instant;

/// Diagnostic variant: run to the cycle cap, then dump each core's
/// pipeline state (used to investigate stalls).
pub fn run_sequential_debug(program: &Program, cfg: &TargetConfig) -> String {
    let Plumbing { mut cores, mut out_consumers, in_producers, mem, .. } = plumb(program, cfg);
    let mut uncore = Uncore::new(cfg, Scheme::CycleByCycle, in_producers, None, mem);
    let mut cycle: u64 = 0;
    loop {
        cycle += 1;
        for core in cores.iter_mut() {
            if core.finished() || core.stopped() {
                continue;
            }
            if !core.running() && core.next_msg_ts().is_none() {
                continue;
            }
            core.step_cycle(cycle);
        }
        for (c, q) in out_consumers.iter_mut().enumerate() {
            while let Some(ev) = q.pop() {
                uncore.ingest(c, ev);
            }
        }
        uncore.process_ready(cycle);
        uncore.flush_overflow();
        if uncore.all_workloads_done() && cores.iter().all(|c| c.finished() || !c.running()) {
            return format!("completed at cycle {cycle}");
        }
        if cycle >= cfg.max_cycles {
            let mut out = format!("STUCK at cycle {cycle}\n");
            for c in &mut cores {
                out.push_str(&c.debug_state());
                out.push('\n');
            }
            out.push_str(&format!("pending GQ events: {}\n", uncore.pending_events()));
            out.push_str(&format!("barrier waiters: {}\n", uncore.sync.barrier_waiters()));
            return out;
        }
    }
}

/// Run `program` to completion on the sequential cycle-by-cycle engine.
pub fn run_sequential(program: &Program, cfg: &TargetConfig) -> SimReport {
    let Plumbing { mut cores, mut out_consumers, in_producers, tracker, roi, mem, .. } =
        plumb(program, cfg);
    let mut uncore = Uncore::new(cfg, Scheme::CycleByCycle, in_producers, None, mem);

    let t0 = Instant::now();
    let mut cycle: u64 = 0;
    loop {
        cycle += 1;
        let mut stepped = 0usize;
        for core in cores.iter_mut() {
            if core.finished() || core.stopped() {
                continue;
            }
            // Idle-skip cores with no workload thread and no pending
            // messages (mirrors parking in the parallel engine).
            if !core.running() && core.next_msg_ts().is_none() {
                continue;
            }
            // A sync waiter's clock is suspended until its reply timestamp
            // (mirrors sync-parking in the parallel engine).
            if core.sync_waiting() {
                match core.earliest_sync_reply_ts() {
                    Some(r) if cycle >= r => {}
                    _ => continue,
                }
            }
            core.step_cycle(cycle);
            stepped += 1;
        }
        for (c, q) in out_consumers.iter_mut().enumerate() {
            while let Some(ev) = q.pop() {
                uncore.ingest(c, ev);
            }
        }
        if stepped == 0 {
            // All clocks suspended: jump virtual time to the next event.
            if let Some(t) = uncore.min_pending_ts() {
                cycle = cycle.max(t);
            }
        }
        uncore.process_ready(cycle);
        uncore.flush_overflow();

        if uncore.all_workloads_done() && cores.iter().all(|c| c.finished() || !c.running()) {
            break;
        }
        if let StopCondition::RoiInstructions(limit) = cfg.stop {
            if roi.committed.load(Ordering::Relaxed) >= limit {
                break;
            }
        }
        if cycle >= cfg.max_cycles {
            break;
        }
    }

    // Drain any trailing events (exit notices).
    for (c, q) in out_consumers.iter_mut().enumerate() {
        while let Some(ev) = q.pop() {
            uncore.ingest(c, ev);
        }
    }
    uncore.process_ready(u64::MAX);

    let engine = EngineStats {
        events_processed: uncore.events_processed,
        global_updates: cycle,
        ..Default::default()
    };
    let outputs: Vec<CoreOutput> = cores.into_iter().map(|c| c.into_output()).collect();
    let violations = violation_report(&tracker);
    assemble_report(Scheme::CycleByCycle, cfg, outputs, &uncore, engine, violations, t0.elapsed())
}
