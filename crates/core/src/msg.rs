//! Event-queue message types (the paper's OutQ / InQ / GQ entries, §2.2).
//!
//! "In each entry, a timestamp records the time an event initiates and
//! should take effect. Events are labelled by their event type field."

use sk_mem::l1::ReqKind;
use sk_mem::BlockAddr;
use sk_snap::{Persist, Reader, SnapError, Writer};

/// Synchronization operations, routed through the manager thread so that
/// their global ordering is governed by the active slack scheme (this is
/// what makes lock-acquisition order sensitive to slack, §3.2.3).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SyncOp {
    /// Initialize lock `id`.
    InitLock { id: u32 },
    /// Acquire lock `id`; the reply (always `1`) is withheld until the
    /// lock is granted, so contended waiting costs simulated time computed
    /// in event time (grant ts − request ts), not host time.
    Lock { id: u32 },
    /// Release lock `id` (granting the oldest queued waiter, if any).
    Unlock { id: u32 },
    /// Initialize barrier `id` with `count` participants.
    InitBarrier { id: u32, count: u32 },
    /// Arrive at barrier `id`; the reply is withheld until all arrive.
    BarrierArrive { id: u32 },
    /// Initialize semaphore `id` with `count`.
    InitSema { id: u32, count: i64 },
    /// P operation; the reply is withheld until a unit is available.
    SemaWait { id: u32 },
    /// V operation.
    SemaSignal { id: u32 },
    /// Spawn a workload thread: reply `value = tid` or -1 if no core free.
    Spawn { entry: u64, arg: u64 },
    /// Atomic compare-and-swap on functional memory: if the word at
    /// `addr` equals `expected`, store `desired`. The reply carries the
    /// observed (pre-swap) value. Applied by the manager when it
    /// processes the event, so contended CAS winners are ordered by the
    /// active slack scheme exactly like lock grants (§3.2.3).
    Cas { addr: u64, expected: u64, desired: u64 },
}

/// An entry in a core's outgoing event queue (OutQ).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OutEvent {
    /// Simulated cycle at which the event initiates.
    pub ts: u64,
    /// Per-core sequence number; breaks ties deterministically in
    /// timestamp-ordered schemes.
    pub seq: u64,
    /// Payload.
    pub kind: OutKind,
}

/// Payload of an [`OutEvent`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OutKind {
    /// A coherence request from the data cache.
    DMem { req: ReqKind, block: BlockAddr },
    /// A coherence request from the instruction cache (always `GetS`).
    IMem { block: BlockAddr },
    /// A synchronization operation.
    Sync(SyncOp),
    /// The workload thread on this core exited (`a0` = exit code).
    Exit { code: u64 },
    /// All workload threads have been created and the region of interest
    /// begins: the manager resets statistics (paper §4.1).
    RoiBegin,
    /// Region of interest ends: the manager freezes statistics.
    RoiEnd,
}

/// An entry in a core's incoming event queue (InQ).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct InMsg {
    /// Simulated cycle at which the message should take effect ("the core
    /// thread reads out the entry when its local time becomes equal to the
    /// timestamp").
    pub ts: u64,
    /// Payload.
    pub kind: InKind,
}

/// Payload of an [`InMsg`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InKind {
    /// Reply to a data-cache miss: install `block` in `granted` state.
    DMemReply { block: BlockAddr, granted: sk_mem::LineState },
    /// Reply to an instruction-cache miss.
    IMemReply { block: BlockAddr },
    /// Reply to a [`SyncOp`]; `value` is operation-specific.
    SyncReply { value: i64 },
    /// Invalidate (or downgrade, if `downgrade`) a block in this L1.
    Invalidate { block: BlockAddr, downgrade: bool },
    /// Begin executing a workload thread at `entry` with argument `arg`.
    Start { entry: u64, arg: u64, tid: u32 },
    /// The simulation is over; the core thread should finish.
    Stop,
}

/// A consolidated event in the manager's global queue (GQ): an OutQ entry
/// plus its originating core.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GlobalEvent {
    /// Originating core.
    pub core: usize,
    /// The event.
    pub ev: OutEvent,
}

impl GlobalEvent {
    /// Deterministic processing key: (timestamp, core, per-core sequence).
    pub fn key(&self) -> (u64, usize, u64) {
        (self.ev.ts, self.core, self.ev.seq)
    }
}

impl Persist for SyncOp {
    fn save(&self, w: &mut Writer) {
        match *self {
            SyncOp::InitLock { id } => {
                w.put_u8(0);
                w.put_u32(id);
            }
            SyncOp::Lock { id } => {
                w.put_u8(1);
                w.put_u32(id);
            }
            SyncOp::Unlock { id } => {
                w.put_u8(2);
                w.put_u32(id);
            }
            SyncOp::InitBarrier { id, count } => {
                w.put_u8(3);
                w.put_u32(id);
                w.put_u32(count);
            }
            SyncOp::BarrierArrive { id } => {
                w.put_u8(4);
                w.put_u32(id);
            }
            SyncOp::InitSema { id, count } => {
                w.put_u8(5);
                w.put_u32(id);
                w.put_i64(count);
            }
            SyncOp::SemaWait { id } => {
                w.put_u8(6);
                w.put_u32(id);
            }
            SyncOp::SemaSignal { id } => {
                w.put_u8(7);
                w.put_u32(id);
            }
            SyncOp::Spawn { entry, arg } => {
                w.put_u8(8);
                w.put_u64(entry);
                w.put_u64(arg);
            }
            SyncOp::Cas { addr, expected, desired } => {
                w.put_u8(9);
                w.put_u64(addr);
                w.put_u64(expected);
                w.put_u64(desired);
            }
        }
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        Ok(match r.get_u8()? {
            0 => SyncOp::InitLock { id: r.get_u32()? },
            1 => SyncOp::Lock { id: r.get_u32()? },
            2 => SyncOp::Unlock { id: r.get_u32()? },
            3 => SyncOp::InitBarrier { id: r.get_u32()?, count: r.get_u32()? },
            4 => SyncOp::BarrierArrive { id: r.get_u32()? },
            5 => SyncOp::InitSema { id: r.get_u32()?, count: r.get_i64()? },
            6 => SyncOp::SemaWait { id: r.get_u32()? },
            7 => SyncOp::SemaSignal { id: r.get_u32()? },
            8 => SyncOp::Spawn { entry: r.get_u64()?, arg: r.get_u64()? },
            9 => SyncOp::Cas { addr: r.get_u64()?, expected: r.get_u64()?, desired: r.get_u64()? },
            t => return Err(SnapError::Corrupt(format!("sync-op tag {t}"))),
        })
    }
}

impl Persist for OutKind {
    fn save(&self, w: &mut Writer) {
        match *self {
            OutKind::DMem { req, block } => {
                w.put_u8(0);
                req.save(w);
                w.put_u64(block);
            }
            OutKind::IMem { block } => {
                w.put_u8(1);
                w.put_u64(block);
            }
            OutKind::Sync(op) => {
                w.put_u8(2);
                op.save(w);
            }
            OutKind::Exit { code } => {
                w.put_u8(3);
                w.put_u64(code);
            }
            OutKind::RoiBegin => w.put_u8(4),
            OutKind::RoiEnd => w.put_u8(5),
        }
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        Ok(match r.get_u8()? {
            0 => OutKind::DMem { req: ReqKind::load(r)?, block: r.get_u64()? },
            1 => OutKind::IMem { block: r.get_u64()? },
            2 => OutKind::Sync(SyncOp::load(r)?),
            3 => OutKind::Exit { code: r.get_u64()? },
            4 => OutKind::RoiBegin,
            5 => OutKind::RoiEnd,
            t => return Err(SnapError::Corrupt(format!("out-kind tag {t}"))),
        })
    }
}

impl Persist for OutEvent {
    fn save(&self, w: &mut Writer) {
        w.put_u64(self.ts);
        w.put_u64(self.seq);
        self.kind.save(w);
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        Ok(OutEvent { ts: r.get_u64()?, seq: r.get_u64()?, kind: OutKind::load(r)? })
    }
}

impl Persist for InKind {
    fn save(&self, w: &mut Writer) {
        match *self {
            InKind::DMemReply { block, granted } => {
                w.put_u8(0);
                w.put_u64(block);
                granted.save(w);
            }
            InKind::IMemReply { block } => {
                w.put_u8(1);
                w.put_u64(block);
            }
            InKind::SyncReply { value } => {
                w.put_u8(2);
                w.put_i64(value);
            }
            InKind::Invalidate { block, downgrade } => {
                w.put_u8(3);
                w.put_u64(block);
                w.put_bool(downgrade);
            }
            InKind::Start { entry, arg, tid } => {
                w.put_u8(4);
                w.put_u64(entry);
                w.put_u64(arg);
                w.put_u32(tid);
            }
            InKind::Stop => w.put_u8(5),
        }
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        Ok(match r.get_u8()? {
            0 => InKind::DMemReply { block: r.get_u64()?, granted: sk_mem::LineState::load(r)? },
            1 => InKind::IMemReply { block: r.get_u64()? },
            2 => InKind::SyncReply { value: r.get_i64()? },
            3 => InKind::Invalidate { block: r.get_u64()?, downgrade: r.get_bool()? },
            4 => InKind::Start { entry: r.get_u64()?, arg: r.get_u64()?, tid: r.get_u32()? },
            5 => InKind::Stop,
            t => return Err(SnapError::Corrupt(format!("in-kind tag {t}"))),
        })
    }
}

impl Persist for InMsg {
    fn save(&self, w: &mut Writer) {
        w.put_u64(self.ts);
        self.kind.save(w);
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        Ok(InMsg { ts: r.get_u64()?, kind: InKind::load(r)? })
    }
}

impl Persist for GlobalEvent {
    fn save(&self, w: &mut Writer) {
        w.put_usize(self.core);
        self.ev.save(w);
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        Ok(GlobalEvent { core: r.get_usize()?, ev: OutEvent::load(r)? })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_event_key_orders_by_ts_then_core_then_seq() {
        let mk =
            |core, ts, seq| GlobalEvent { core, ev: OutEvent { ts, seq, kind: OutKind::RoiBegin } };
        let mut v = [mk(1, 5, 0), mk(0, 5, 1), mk(0, 5, 0), mk(2, 4, 9)];
        v.sort_by_key(|g| g.key());
        let keys: Vec<_> = v.iter().map(|g| g.key()).collect();
        assert_eq!(keys, vec![(4, 2, 9), (5, 0, 0), (5, 0, 1), (5, 1, 0)]);
    }
}
