//! Event-queue message types (the paper's OutQ / InQ / GQ entries, §2.2).
//!
//! "In each entry, a timestamp records the time an event initiates and
//! should take effect. Events are labelled by their event type field."

use sk_mem::l1::ReqKind;
use sk_mem::BlockAddr;

/// Synchronization operations, routed through the manager thread so that
/// their global ordering is governed by the active slack scheme (this is
/// what makes lock-acquisition order sensitive to slack, §3.2.3).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SyncOp {
    /// Initialize lock `id`.
    InitLock { id: u32 },
    /// Acquire lock `id`; the reply (always `1`) is withheld until the
    /// lock is granted, so contended waiting costs simulated time computed
    /// in event time (grant ts − request ts), not host time.
    Lock { id: u32 },
    /// Release lock `id` (granting the oldest queued waiter, if any).
    Unlock { id: u32 },
    /// Initialize barrier `id` with `count` participants.
    InitBarrier { id: u32, count: u32 },
    /// Arrive at barrier `id`; the reply is withheld until all arrive.
    BarrierArrive { id: u32 },
    /// Initialize semaphore `id` with `count`.
    InitSema { id: u32, count: i64 },
    /// P operation; the reply is withheld until a unit is available.
    SemaWait { id: u32 },
    /// V operation.
    SemaSignal { id: u32 },
    /// Spawn a workload thread: reply `value = tid` or -1 if no core free.
    Spawn { entry: u64, arg: u64 },
}

/// An entry in a core's outgoing event queue (OutQ).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OutEvent {
    /// Simulated cycle at which the event initiates.
    pub ts: u64,
    /// Per-core sequence number; breaks ties deterministically in
    /// timestamp-ordered schemes.
    pub seq: u64,
    /// Payload.
    pub kind: OutKind,
}

/// Payload of an [`OutEvent`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OutKind {
    /// A coherence request from the data cache.
    DMem { req: ReqKind, block: BlockAddr },
    /// A coherence request from the instruction cache (always `GetS`).
    IMem { block: BlockAddr },
    /// A synchronization operation.
    Sync(SyncOp),
    /// The workload thread on this core exited (`a0` = exit code).
    Exit { code: u64 },
    /// All workload threads have been created and the region of interest
    /// begins: the manager resets statistics (paper §4.1).
    RoiBegin,
    /// Region of interest ends: the manager freezes statistics.
    RoiEnd,
}

/// An entry in a core's incoming event queue (InQ).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct InMsg {
    /// Simulated cycle at which the message should take effect ("the core
    /// thread reads out the entry when its local time becomes equal to the
    /// timestamp").
    pub ts: u64,
    /// Payload.
    pub kind: InKind,
}

/// Payload of an [`InMsg`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InKind {
    /// Reply to a data-cache miss: install `block` in `granted` state.
    DMemReply { block: BlockAddr, granted: sk_mem::LineState },
    /// Reply to an instruction-cache miss.
    IMemReply { block: BlockAddr },
    /// Reply to a [`SyncOp`]; `value` is operation-specific.
    SyncReply { value: i64 },
    /// Invalidate (or downgrade, if `downgrade`) a block in this L1.
    Invalidate { block: BlockAddr, downgrade: bool },
    /// Begin executing a workload thread at `entry` with argument `arg`.
    Start { entry: u64, arg: u64, tid: u32 },
    /// The simulation is over; the core thread should finish.
    Stop,
}

/// A consolidated event in the manager's global queue (GQ): an OutQ entry
/// plus its originating core.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GlobalEvent {
    /// Originating core.
    pub core: usize,
    /// The event.
    pub ev: OutEvent,
}

impl GlobalEvent {
    /// Deterministic processing key: (timestamp, core, per-core sequence).
    pub fn key(&self) -> (u64, usize, u64) {
        (self.ev.ts, self.core, self.ev.seq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_event_key_orders_by_ts_then_core_then_seq() {
        let mk =
            |core, ts, seq| GlobalEvent { core, ev: OutEvent { ts, seq, kind: OutKind::RoiBegin } };
        let mut v = [mk(1, 5, 0), mk(0, 5, 1), mk(0, 5, 0), mk(2, 4, 9)];
        v.sort_by_key(|g| g.key());
        let keys: Vec<_> = v.iter().map(|g| g.key()).collect();
        assert_eq!(keys, vec![(4, 2, 9), (5, 0, 0), (5, 0, 1), (5, 1, 0)]);
    }
}
