//! Direct unit tests of the manager state machine (Uncore), driven
//! without any threads or CPUs.

use sk_core::msg::{InKind, InMsg, OutEvent, OutKind, SyncOp};
use sk_core::spsc::{self, Consumer};
use sk_core::uncore::Uncore;
use sk_core::{Scheme, TargetConfig};
use sk_mem::l1::ReqKind;
use sk_mem::LineState;

fn mk(scheme: Scheme, n: usize) -> (Uncore, Vec<Consumer<InMsg>>) {
    let mut cfg = TargetConfig::small(n);
    cfg.n_cores = n;
    let mut producers = Vec::new();
    let mut consumers = Vec::new();
    for _ in 0..n {
        let (p, c) = spsc::channel(256);
        producers.push(p);
        consumers.push(c);
    }
    (Uncore::new(&cfg, scheme, producers, None, sk_mem::FuncMemory::new()), consumers)
}

fn ev(ts: u64, seq: u64, kind: OutKind) -> OutEvent {
    OutEvent { ts, seq, kind }
}

fn drain(c: &mut Consumer<InMsg>) -> Vec<InMsg> {
    let mut v = vec![];
    while let Some(m) = c.pop() {
        v.push(m);
    }
    v
}

#[test]
fn ordered_scheme_withholds_future_events() {
    let (mut u, mut rings) = mk(Scheme::CycleByCycle, 2);
    u.ingest(0, ev(50, 0, OutKind::DMem { req: ReqKind::GetS, block: 8 }));
    u.process_ready(49);
    assert_eq!(u.pending_events(), 1, "ts 50 must wait for horizon 50");
    assert!(drain(&mut rings[0]).is_empty());
    u.process_ready(50);
    assert_eq!(u.pending_events(), 0);
    let msgs = drain(&mut rings[0]);
    assert_eq!(msgs.len(), 1);
    assert!(matches!(msgs[0].kind, InKind::DMemReply { block: 8, .. }));
    assert!(msgs[0].ts > 50);
}

#[test]
fn ordered_scheme_processes_in_timestamp_core_order() {
    // Two same-ts events from different cores plus an older one: the
    // reply timestamps must reflect (ts, core) processing order through
    // the shared-bus occupancy.
    let (mut u, mut rings) = mk(Scheme::Lookahead(10), 3);
    u.ingest(2, ev(10, 0, OutKind::DMem { req: ReqKind::GetS, block: 0 }));
    u.ingest(1, ev(10, 0, OutKind::DMem { req: ReqKind::GetS, block: 8 }));
    u.ingest(0, ev(9, 0, OutKind::DMem { req: ReqKind::GetS, block: 16 }));
    u.process_ready(10);
    let t0 = drain(&mut rings[0])[0].ts;
    let t1 = drain(&mut rings[1])[0].ts;
    let t2 = drain(&mut rings[2])[0].ts;
    assert!(t0 <= t1 && t1 <= t2, "bus order follows (ts, core): {t0} {t1} {t2}");
}

#[test]
fn eager_scheme_processes_immediately() {
    let (mut u, mut rings) = mk(Scheme::Unbounded, 1);
    u.ingest(0, ev(1_000_000, 0, OutKind::DMem { req: ReqKind::GetM, block: 4 }));
    // no process_ready call needed
    let msgs = drain(&mut rings[0]);
    assert_eq!(msgs.len(), 1);
    assert!(matches!(msgs[0].kind, InKind::DMemReply { block: 4, granted: LineState::Modified }));
}

#[test]
fn quantum_scheme_holds_events_until_the_barrier() {
    let (mut u, mut rings) = mk(Scheme::Quantum(10), 1);
    u.ingest(0, ev(3, 0, OutKind::IMem { block: 2 }));
    u.process_ready(7); // mid-quantum: horizon is 0
    assert_eq!(u.pending_events(), 1);
    assert!(drain(&mut rings[0]).is_empty());
    u.process_ready(10); // the barrier
    assert_eq!(drain(&mut rings[0]).len(), 1);
}

#[test]
fn spawn_places_threads_and_reports_exhaustion() {
    let (mut u, mut rings) = mk(Scheme::CycleByCycle, 3);
    assert_eq!(u.n_started(), 1); // core 0 runs the initial thread
    u.ingest(0, ev(1, 0, OutKind::Sync(SyncOp::Spawn { entry: 0x1000, arg: 7 })));
    u.ingest(0, ev(2, 1, OutKind::Sync(SyncOp::Spawn { entry: 0x1000, arg: 8 })));
    u.ingest(0, ev(3, 2, OutKind::Sync(SyncOp::Spawn { entry: 0x1000, arg: 9 })));
    u.process_ready(3);
    assert_eq!(u.n_started(), 3);
    // Replies to the spawner: tids 1, 2, then -1 (no core free).
    let replies: Vec<i64> = drain(&mut rings[0])
        .into_iter()
        .filter_map(|m| match m.kind {
            InKind::SyncReply { value } => Some(value),
            _ => None,
        })
        .collect();
    assert_eq!(replies, vec![1, 2, -1]);
    // Start messages landed on cores 1 and 2 with the right args.
    for (c, ring) in rings.iter_mut().enumerate().skip(1) {
        let starts: Vec<_> =
            drain(ring).into_iter().filter(|m| matches!(m.kind, InKind::Start { .. })).collect();
        assert_eq!(starts.len(), 1, "core {c}");
        if let InKind::Start { entry, arg, tid } = starts[0].kind {
            assert_eq!(entry, 0x1000);
            assert_eq!(arg, 6 + tid as u64);
            assert_eq!(tid as usize, c);
        }
    }
}

#[test]
fn exit_events_mark_workloads_done() {
    let (mut u, _rings) = mk(Scheme::CycleByCycle, 2);
    assert!(!u.all_workloads_done());
    u.ingest(0, ev(5, 0, OutKind::Exit { code: 0 }));
    u.process_ready(5);
    assert!(u.all_workloads_done(), "only core 0 ever started");
}

#[test]
fn roi_begin_resets_uncore_statistics() {
    let (mut u, mut rings) = mk(Scheme::CycleByCycle, 1);
    u.ingest(0, ev(1, 0, OutKind::DMem { req: ReqKind::GetS, block: 1 }));
    u.process_ready(1);
    assert_eq!(u.dir.stats.gets, 1);
    u.ingest(0, ev(2, 1, OutKind::RoiBegin));
    u.process_ready(2);
    assert_eq!(u.dir.stats.gets, 0, "ROI begin resets directory stats");
    assert_eq!(u.roi_start, Some(2));
    let _ = drain(&mut rings[0]);
}

#[test]
fn overflow_spills_and_flushes() {
    // A tiny ring: pushes beyond capacity must spill to the overflow
    // buffer and drain once the consumer catches up.
    let mut cfg = TargetConfig::small(1);
    cfg.n_cores = 1;
    let (p, mut c) = spsc::channel(2);
    let mut u = Uncore::new(&cfg, Scheme::Unbounded, vec![p], None, sk_mem::FuncMemory::new());
    for i in 0..8u64 {
        u.ingest(0, ev(i + 1, i, OutKind::IMem { block: i * 64 }));
    }
    // Ring holds 2; the rest spilled. Drain and flush alternately.
    let mut got = 0;
    for _ in 0..10 {
        got += drain(&mut c).len();
        u.flush_overflow();
    }
    assert_eq!(got, 8, "all replies eventually delivered");
}

#[test]
fn min_pending_reports_earliest_timestamp() {
    let (mut u, _rings) = mk(Scheme::CycleByCycle, 1);
    assert_eq!(u.min_pending_ts(), None);
    u.ingest(0, ev(42, 0, OutKind::IMem { block: 1 }));
    u.ingest(0, ev(17, 1, OutKind::IMem { block: 2 }));
    assert_eq!(u.min_pending_ts(), Some(17));
    u.process_all_upto(41);
    assert_eq!(u.min_pending_ts(), Some(42));
}
