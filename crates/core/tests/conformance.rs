//! Scheme-conformance matrix: every slack scheme × representative
//! kernels, under both execution backends.
//!
//! What each scheme class *guarantees* — established empirically against
//! this engine and asserted here (DESIGN.md "Deterministic execution",
//! paper §3):
//!
//! * **CC** is fully schedule-independent: the deterministic backend
//!   reproduces the threaded run *byte for byte* (whole report
//!   fingerprint) for every seed, and never records a violation even on
//!   data-racy workloads.
//! * **Q** runs whole quanta between barriers, so its simulated outcome
//!   is seed-independent on the deterministic backend (identical
//!   fingerprints across seeds), though the threaded backend's timeout
//!   path may take different — equally legal — barrier rounds.
//! * **Ordered conservative schemes** (L, S*) drain the event queue in
//!   timestamp order: their *exec time* is schedule-independent (equal
//!   across every seed, and equal to CC when the parameter is at the
//!   critical latency), but micro-counters such as stall/idle cycles
//!   legitimately vary with the schedule.
//! * **Any bounded window `w`** (Q*w*, L*w*, S*w*, S*w**, A*min*-*max*)
//!   caps the damage on racy workloads: no recorded access-order
//!   inversion may exceed `w` simulated cycles. SU is the unbounded
//!   control — its inversions routinely blow far past any window.
//! * The **functional result** (what the program prints, instructions
//!   committed) is identical under every scheme, every backend, and
//!   every schedule — slack perturbs timing, never architectural state.
//!
//! The deterministic backend doubles as the fuzz oracle: eight fixed
//! seeds per scheme here, `--det-schedules` sweeps in CI. A deliberately
//! broken window computation (`Engine::inject_window_bug`) must be
//! caught within the same seed budget, and every seed committed to
//! `tests/schedules/` must replay with the exact violation counts
//! recorded when it was found.

use sk_core::{run_det, run_parallel, DetEngine, Scheme, SimReport, TargetConfig};
use sk_det::Schedule;
use sk_kernels::{actors, micro, paper_suite, pipeline, treiber, worksteal, Scale, Workload};
use std::path::PathBuf;

/// Fixed seed budget per scheme — small enough for debug-mode CI, wide
/// enough that the injected-bug test reliably trips.
const SEEDS: [u64; 8] = [0, 1, 2, 3, 5, 8, 13, 21];

/// The conformance matrix: every scheme shape, parameters at test scale
/// (critical latency of `TargetConfig::small` targets is 10).
fn scheme_matrix() -> Vec<Scheme> {
    vec![
        Scheme::CycleByCycle,
        Scheme::Quantum(100),
        Scheme::Lookahead(10),
        Scheme::BoundedSlack(10),
        Scheme::OldestFirstBounded(10),
        Scheme::Unbounded,
        Scheme::AdaptiveQuantum { min: 10, max: 1000 },
        Scheme::Adaptive { budget: 16 },
    ]
}

/// Schemes with a finite window, paired with the bound the violation
/// tracker must respect on racy workloads.
fn bounded_schemes() -> Vec<(Scheme, u64)> {
    vec![
        (Scheme::Quantum(10), 10),
        (Scheme::Quantum(100), 100),
        (Scheme::Lookahead(10), 10),
        (Scheme::BoundedSlack(10), 10),
        (Scheme::OldestFirstBounded(10), 10),
        (Scheme::AdaptiveQuantum { min: 10, max: 1000 }, 1000),
        (Scheme::Adaptive { budget: 16 }, 16),
    ]
}

fn cfg(n: usize) -> TargetConfig {
    let mut cfg = TargetConfig::small(n);
    cfg.max_cycles = 5_000_000;
    cfg
}

/// Same, with the violation oracle armed.
fn tracking_cfg(n: usize) -> TargetConfig {
    let mut cfg = cfg(n);
    cfg.track_workload_violations = true;
    cfg.mem.track_violations = true;
    cfg
}

fn printed_values(r: &SimReport) -> Vec<i64> {
    r.printed().into_iter().map(|(_, v)| v).collect()
}

/// Per-run sanity every conforming report must satisfy, regardless of
/// scheme or backend.
fn assert_sane(w: &Workload, r: &SimReport, what: &str) {
    assert_eq!(printed_values(r), w.expected, "{what}: wrong output");
    assert!(r.exec_cycles > 0, "{what}: no simulated progress");
    assert!(r.total_committed() > 0, "{what}: nothing committed");
    if r.violations.total() == 0 {
        assert_eq!(
            r.violations.max_inversion_cycles, 0,
            "{what}: inversion recorded without a violation"
        );
    } else {
        assert!(
            r.violations.max_inversion_cycles > 0,
            "{what}: violation recorded without an inversion timestamp"
        );
    }
}

// ---------------------------------------------------------------------
// Functional determinism: output and commit counts across the matrix.
// ---------------------------------------------------------------------

/// Every scheme × both backends × four seeds computes the right answer,
/// and the instructions-committed total is schedule-independent.
#[test]
fn output_and_commit_counts_are_schedule_independent() {
    let w = micro::lock_sweep(3, 8);
    let c = cfg(3);
    for scheme in scheme_matrix() {
        let threaded = run_parallel(&w.program, scheme, &c);
        assert_sane(&w, &threaded, &format!("{scheme} threaded"));
        let mut committed = None;
        for seed in &SEEDS[..4] {
            let r = run_det(&w.program, scheme, &c, *seed);
            assert_sane(&w, &r, &format!("{scheme} det seed {seed}"));
            let got = r.total_committed();
            match committed {
                None => committed = Some(got),
                Some(want) => assert_eq!(
                    got, want,
                    "{scheme}: committed-instruction count depends on the schedule"
                ),
            }
        }
    }
}

// ---------------------------------------------------------------------
// Schedule-independence ladder: what each conservative class guarantees.
// ---------------------------------------------------------------------

/// CC on the deterministic backend reproduces the threaded run byte for
/// byte — whole-report fingerprint, any seed.
#[test]
fn cc_det_is_bit_identical_to_cc_threaded() {
    let w = micro::lock_sweep(4, 6);
    let c = cfg(4);
    let threaded = run_parallel(&w.program, Scheme::CycleByCycle, &c).fingerprint();
    for seed in SEEDS {
        let det = run_det(&w.program, Scheme::CycleByCycle, &c, seed).fingerprint();
        assert_eq!(det, threaded, "CC must be schedule-independent (seed {seed})");
    }
}

/// The quantum scheme's whole simulated outcome is seed-independent on
/// the deterministic backend: barriers serialize the run into quanta, so
/// the interleaving within a quantum cannot show.
#[test]
fn quantum_det_outcome_is_seed_independent() {
    let w = micro::lock_sweep(3, 8);
    let c = cfg(3);
    let baseline = run_det(&w.program, Scheme::Quantum(100), &c, SEEDS[0]).fingerprint();
    for seed in &SEEDS[1..] {
        let fp = run_det(&w.program, Scheme::Quantum(100), &c, *seed).fingerprint();
        assert_eq!(fp, baseline, "Q100 outcome depends on the schedule (seed {seed})");
    }
}

/// Timestamp-ordered conservative schemes (CC, L, S*) have
/// schedule-independent *exec time*; at the critical latency their exec
/// time equals CC's exactly. (Micro-counters such as stall cycles vary
/// with the schedule, so the assertion is scoped to exec time — the
/// quantity the paper's Table 3 reports.)
#[test]
fn ordered_schemes_exec_time_is_seed_independent() {
    for w in [micro::lock_sweep(3, 8), micro::racy_increment(3, 30)] {
        let c = cfg(3);
        let cc = run_det(&w.program, Scheme::CycleByCycle, &c, 0).exec_cycles;
        for scheme in [Scheme::CycleByCycle, Scheme::Lookahead(10), Scheme::OldestFirstBounded(10)]
        {
            for seed in SEEDS {
                let r = run_det(&w.program, scheme, &c, seed);
                assert_eq!(
                    r.exec_cycles, cc,
                    "{}: {scheme} exec time must match CC on every schedule (seed {seed})",
                    w.name
                );
            }
        }
    }
}

// ---------------------------------------------------------------------
// The violation oracle: slack windows bound inversion timestamps.
// ---------------------------------------------------------------------

/// CC never records a violation, even on workloads with real data races.
#[test]
fn cc_never_violates_even_on_racy_workloads() {
    for w in [micro::racy_increment(3, 30), micro::false_sharing(3, 30)] {
        let c = tracking_cfg(3);
        let threaded = run_parallel(&w.program, Scheme::CycleByCycle, &c);
        assert_eq!(threaded.violations.total(), 0, "{} threaded CC violated", w.name);
        for seed in &SEEDS[..4] {
            let r = run_det(&w.program, Scheme::CycleByCycle, &c, *seed);
            assert_eq!(r.violations.total(), 0, "{} det CC violated (seed {seed})", w.name);
        }
    }
}

/// On a racy workload, every bounded-window scheme keeps recorded
/// access-order inversions within its window: a scheme with window `w`
/// can never let an access land more than `w` cycles after its
/// timestamp has passed. (SU is exempt by construction — and reliably
/// exceeds these bounds, which is what makes this a real oracle.)
#[test]
fn slack_bound_caps_inversion_timestamps() {
    let w = micro::racy_increment(3, 30);
    let c = tracking_cfg(3);
    for (scheme, bound) in bounded_schemes() {
        // The table above is what `Scheme::slack_bound` promises the
        // fuzzing CLI — keep the oracle and this suite in lockstep.
        assert_eq!(scheme.slack_bound(), Some(bound), "{scheme}: oracle bound drifted");
        let threaded = run_parallel(&w.program, scheme, &c);
        assert!(
            threaded.violations.max_inversion_cycles <= bound,
            "{scheme} threaded: inversion {} exceeds window {bound}",
            threaded.violations.max_inversion_cycles
        );
        for seed in SEEDS {
            let r = run_det(&w.program, scheme, &c, seed);
            assert!(
                r.violations.max_inversion_cycles <= bound,
                "{scheme} det seed {seed}: inversion {} exceeds window {bound}",
                r.violations.max_inversion_cycles
            );
        }
    }
}

/// The fuzz oracle must actually catch bugs: a window computation that
/// over-extends the slack window by 50 cycles (injected via
/// `Engine::inject_window_bug`) must push at least one seed's inversions
/// past the S10 bound within the CI seed budget.
#[test]
fn injected_window_bug_is_caught_within_the_seed_budget() {
    let w = micro::racy_increment(3, 30);
    let c = tracking_cfg(3);
    let mut worst = 0u64;
    for seed in SEEDS {
        let mut det = DetEngine::new(&w.program, Scheme::BoundedSlack(10), &c, seed);
        det.engine_mut().inject_window_bug(50);
        det.run();
        let r = det.into_report();
        worst = worst.max(r.violations.max_inversion_cycles);
    }
    assert!(
        worst > 10,
        "an engine that hands out 50 extra cycles of slack must trip the \
         S10 inversion bound within {} seeds (worst seen: {worst})",
        SEEDS.len()
    );
}

// ---------------------------------------------------------------------
// Closed-loop adaptive controller (`Scheme::Adaptive`) determinism.
// ---------------------------------------------------------------------

const ADAPTIVE: Scheme = Scheme::Adaptive { budget: 16 };

/// One deterministic adaptive run: report, pick count, decision hash
/// (which covers every controller decision via `note_decision`), and the
/// window trajectory.
fn adaptive_run(w: &Workload, n: usize, seed: u64) -> (SimReport, u64, u64, Vec<(u64, u64)>) {
    let mut det = DetEngine::new(&w.program, ADAPTIVE, &tracking_cfg(n), seed);
    det.run();
    let picks = det.picks();
    let hash = det.decision_hash();
    let traj = det.engine_mut().adapt_trajectory().expect("adaptive engine").to_vec();
    (det.into_report(), picks, hash, traj)
}

/// det≡det for the adaptive scheme: same seed ⇒ bit-identical run,
/// including the decision hash (task order *and* controller decisions)
/// and the exact window trajectory — across the full seed budget.
#[test]
fn adaptive_det_is_bit_identical_per_seed() {
    let w = micro::racy_increment(3, 30);
    for seed in SEEDS {
        let (ra, pa, ha, ta) = adaptive_run(&w, 3, seed);
        let (rb, pb, hb, tb) = adaptive_run(&w, 3, seed);
        assert_eq!(pa, pb, "seed {seed}: pick counts diverged");
        assert_eq!(ha, hb, "seed {seed}: adaptive schedules diverged");
        assert_eq!(ta, tb, "seed {seed}: window trajectories diverged");
        assert_eq!(ra.fingerprint(), rb.fingerprint(), "seed {seed}: reports diverged");
        assert!(!ta.is_empty(), "seed {seed}: the controller never decided");
        assert!(
            ta.iter().all(|&(_, win)| (1..=16).contains(&win)),
            "seed {seed}: a granted window escaped [1, budget]"
        );
        assert!(
            ra.violations.max_inversion_cycles <= 16,
            "seed {seed}: inversion {} exceeds the declared budget",
            ra.violations.max_inversion_cycles
        );
    }
}

/// A recorded adaptive schedule replays bit-exactly under a different
/// seed: the log drives the picks, the controller re-derives the same
/// decisions, and the decision hash proves the trajectory matched.
#[test]
fn adaptive_recorded_schedule_replays_trajectory_exactly() {
    let w = micro::racy_increment(3, 30);
    let c = tracking_cfg(3);
    let mut a = DetEngine::new(&w.program, ADAPTIVE, &c, SEEDS[5]);
    a.record_schedule();
    a.run();
    let log = a.recorded_schedule().unwrap().to_vec();
    let hash = a.decision_hash();
    let traj = a.engine_mut().adapt_trajectory().unwrap().to_vec();
    let fp = a.into_report().fingerprint();

    let mut b = DetEngine::new(&w.program, ADAPTIVE, &c, 424242);
    b.replay(log);
    b.run();
    assert_eq!(b.decision_hash(), hash, "replay took a different schedule or trajectory");
    assert_eq!(b.engine_mut().adapt_trajectory().unwrap(), &traj[..]);
    assert_eq!(b.into_report().fingerprint(), fp);
}

// ---------------------------------------------------------------------
// Sharded clock domains (cfg.mem_shards > 0): the conformance ladder
// must survive partitioning the manager.
// ---------------------------------------------------------------------

fn sharded_cfg(n: usize, shards: usize) -> TargetConfig {
    let mut c = cfg(n);
    c.mem_shards = shards;
    c
}

/// CC is bit-identical across shard counts AND backends: the per-bank
/// interconnect channels make bank partitioning invisible to timing, so
/// the sharded engine reproduces the single-manager CC run byte for byte,
/// and the deterministic backend reproduces the threaded run at every
/// shard count across the full seed budget.
#[test]
fn cc_det_matches_threaded_at_every_shard_count() {
    let w = micro::lock_sweep(4, 6);
    let baseline = run_parallel(&w.program, Scheme::CycleByCycle, &cfg(4)).fingerprint();
    for shards in [0usize, 2, 4] {
        let c = sharded_cfg(4, shards);
        let threaded = run_parallel(&w.program, Scheme::CycleByCycle, &c).fingerprint();
        assert_eq!(threaded, baseline, "CC with {shards} shards diverged from single-manager CC");
        for seed in SEEDS {
            let det = run_det(&w.program, Scheme::CycleByCycle, &c, seed).fingerprint();
            assert_eq!(det, baseline, "CC det diverged (shards={shards}, seed={seed})");
        }
    }
}

/// Every bounded scheme keeps its slack bound at every shard count: the
/// deterministic fuzzer's inversion oracle never sees an access land more
/// than `slack_bound()` cycles late, no matter how the manager is split.
#[test]
fn slack_bounds_hold_across_shard_counts() {
    let w = micro::racy_increment(3, 30);
    for shards in [2usize, 4] {
        let mut c = tracking_cfg(3);
        c.mem_shards = shards;
        for (scheme, bound) in bounded_schemes() {
            for seed in &SEEDS[..3] {
                let r = run_det(&w.program, scheme, &c, *seed);
                assert_sane(&w, &r, &format!("{scheme} shards={shards} seed={seed}"));
                assert!(
                    r.violations.max_inversion_cycles <= bound,
                    "{scheme} shards={shards} seed={seed}: inversion {} exceeds window {bound}",
                    r.violations.max_inversion_cycles
                );
            }
        }
    }
}

/// 64-core scale-out: sharded CC is bit-identical to single-manager CC
/// on a `many_core` target (printed output and the whole report
/// fingerprint, which pins exec cycles), for shards ∈ {2, 4, 8}.
#[test]
fn many_core_cc_sharded_is_bit_identical_to_single_manager() {
    let w = micro::lock_sweep(64, 2);
    let mut base = TargetConfig::many_core(64);
    base.max_cycles = 20_000_000;
    let baseline = run_parallel(&w.program, Scheme::CycleByCycle, &base);
    assert_eq!(printed_values(&baseline), w.expected, "64-core CC: wrong output");
    for shards in [2usize, 4, 8] {
        let mut c = base;
        c.mem_shards = shards;
        let r = run_parallel(&w.program, Scheme::CycleByCycle, &c);
        assert_eq!(
            r.fingerprint(),
            baseline.fingerprint(),
            "64-core CC with {shards} shards diverged from single-manager CC"
        );
    }
}

/// 64-core functional coverage of the non-CC scheme classes across shard
/// counts: bounded, adaptive and unbounded schemes all complete with the
/// right output under shards ∈ {0, 4, 8}.
#[test]
fn many_core_schemes_complete_across_shard_counts() {
    let w = micro::lock_sweep(64, 1);
    let mut base = TargetConfig::many_core(64);
    base.max_cycles = 20_000_000;
    for scheme in [Scheme::BoundedSlack(10), Scheme::Adaptive { budget: 16 }, Scheme::Unbounded] {
        for shards in [0usize, 4, 8] {
            let mut c = base;
            c.mem_shards = shards;
            let r = run_parallel(&w.program, scheme, &c);
            assert_sane(&w, &r, &format!("64-core {scheme} shards={shards}"));
        }
    }
}

// ---------------------------------------------------------------------
// Committed seed corpus: regression schedules replay bit-exactly.
// ---------------------------------------------------------------------

fn schedules_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/schedules")
}

/// The corpus workloads, by the kernel name recorded in the schedule
/// file. Parameters are fixed: the note's violation counts are only
/// reproducible against the exact same program and config.
fn corpus_kernel(name: &str, n: usize) -> Workload {
    match name {
        "racy_increment" => micro::racy_increment(n, 30),
        "false_sharing" => micro::false_sharing(n, 30),
        "lock_sweep" => micro::lock_sweep(n, 8),
        // Irregular family at `irregular_suite` test-scale parameters, so
        // corpus seeds line up with the CLI's `--replay` workloads.
        "pipeline" => pipeline::pipeline(n.max(2), 8),
        "mailbox_actors" => actors::mailbox_actors(n.max(2), 2),
        "work_steal" => worksteal::work_steal(n, 24i64.max(2 * n as i64)),
        "treiber_stack" => treiber::treiber_stack(n, 4),
        other => panic!("schedule file references unknown corpus kernel {other:?}"),
    }
}

fn corpus_note(r: &SimReport) -> String {
    format!(
        "violations={} max_inversion={} corpus=conformance-v1",
        r.violations.total(),
        r.violations.max_inversion_cycles
    )
}

/// FNV-1a digest over the controller's (global, window) decision pairs —
/// a compact fingerprint of the whole window trajectory.
fn traj_digest(traj: &[(u64, u64)]) -> u64 {
    let mut h = sk_snap::hash::Fnv64::new();
    for &(g, win) in traj {
        h.write_u64(g);
        h.write_u64(win);
    }
    h.value()
}

/// Adaptive corpus notes additionally pin the controller's epoch count,
/// final window, and the exact trajectory digest: a committed seed must
/// replay to the identical control sequence, not just equal violations.
fn adaptive_corpus_note(r: &SimReport, traj: &[(u64, u64)]) -> String {
    format!(
        "violations={} max_inversion={} epochs={} final_window={} traj=0x{:016x} \
         corpus=adaptive-v1",
        r.violations.total(),
        r.violations.max_inversion_cycles,
        r.engine.adapt_epochs,
        r.engine.adapt_final_window,
        traj_digest(traj)
    )
}

/// Every schedule file committed under `tests/schedules/` replays to the
/// exact violation counts recorded in its note — the determinism
/// contract that makes a dumped seed a usable bug report.
#[test]
fn seed_corpus_replays_bit_exactly() {
    let dir = schedules_dir();
    let mut checked = 0;
    let mut entries: Vec<_> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("missing seed corpus {}: {e}", dir.display()))
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|x| x == "txt"))
        .collect();
    entries.sort();
    for path in entries {
        let text = std::fs::read_to_string(&path).unwrap();
        let sched = Schedule::parse(&text)
            .unwrap_or_else(|e| panic!("{}: bad schedule file: {e}", path.display()));
        let scheme: Scheme =
            sched.scheme.parse().unwrap_or_else(|e| panic!("{}: bad scheme: {e}", path.display()));
        let w = corpus_kernel(&sched.kernel, sched.n_cores);
        let mut det = DetEngine::new(&w.program, scheme, &tracking_cfg(sched.n_cores), sched.seed);
        det.run();
        let traj = det.engine_mut().adapt_trajectory().map(|t| t.to_vec());
        let r = det.into_report();
        assert_eq!(printed_values(&r), w.expected, "{}: wrong output", path.display());
        let got = match &traj {
            Some(t) if sched.note.contains("corpus=adaptive-v1") => adaptive_corpus_note(&r, t),
            _ => corpus_note(&r),
        };
        assert_eq!(
            got,
            sched.note,
            "{}: replay does not reproduce the recorded run",
            path.display()
        );
        checked += 1;
    }
    assert!(checked >= 3, "seed corpus unexpectedly small ({checked} files)");
}

/// Regenerate the committed corpus (run manually after an engine change
/// that legitimately shifts violation counts):
/// `cargo test -p sk-core --test conformance regen_seed_corpus -- --ignored`
#[test]
#[ignore = "writes tests/schedules/; run explicitly to regenerate the corpus"]
fn regen_seed_corpus() {
    let dir = schedules_dir();
    std::fs::create_dir_all(&dir).unwrap();
    // One violating seed per racy scheme on the racy kernel, a
    // conservative control that must stay clean, and adaptive seeds that
    // pin the controller's exact window trajectory.
    // `None` seeds are resolved below: scan the seed budget for the first
    // schedule that actually records a violation, so the committed corpus
    // holds *violating* seeds for the irregular kernels (their values are
    // sync-pinned; only timestamp inversions show the slack).
    let picks: [(&str, Scheme, Option<u64>, usize); 10] = [
        ("racy_increment", Scheme::BoundedSlack(10), Some(SEEDS[1]), 3),
        ("racy_increment", Scheme::Unbounded, Some(SEEDS[0]), 3),
        ("false_sharing", Scheme::BoundedSlack(10), Some(SEEDS[2]), 3),
        ("lock_sweep", Scheme::CycleByCycle, Some(SEEDS[3]), 3),
        ("racy_increment", ADAPTIVE, Some(SEEDS[5]), 3),
        ("lock_sweep", ADAPTIVE, Some(SEEDS[2]), 3),
        // Irregular family: SU/S100 seeds genuinely invert (the sync path
        // pins values, so only wide windows let timestamps skew past a
        // conflicting access); the S10/A16 picks are clean controls whose
        // zero-violation notes are themselves replay assertions.
        ("pipeline", Scheme::BoundedSlack(10), None, 4),
        ("mailbox_actors", Scheme::Unbounded, None, 4),
        ("work_steal", Scheme::BoundedSlack(100), None, 4),
        ("treiber_stack", ADAPTIVE, None, 4),
    ];
    for (kernel, scheme, seed, n) in picks {
        let w = corpus_kernel(kernel, n);
        let seed = seed
            .or_else(|| {
                SEEDS.iter().copied().find(|&s| {
                    let mut det = DetEngine::new(&w.program, scheme, &tracking_cfg(n), s);
                    det.run();
                    det.into_report().violations.total() > 0
                })
            })
            .unwrap_or(SEEDS[0]);
        let mut det = DetEngine::new(&w.program, scheme, &tracking_cfg(n), seed);
        det.run();
        let traj = det.engine_mut().adapt_trajectory().map(|t| t.to_vec());
        let r = det.into_report();
        assert_eq!(printed_values(&r), w.expected);
        let mut sched = Schedule::new(seed, &scheme.short_name(), kernel, n);
        sched.note = match &traj {
            Some(t) => adaptive_corpus_note(&r, t),
            None => corpus_note(&r),
        };
        let name = format!(
            "{}-{}-{}.txt",
            kernel,
            scheme.short_name().to_lowercase().replace('*', "star"),
            seed
        );
        std::fs::write(dir.join(name), sched.format()).unwrap();
    }
}

// ---------------------------------------------------------------------
// Heavy matrix (CI `--ignored` pass only).
// ---------------------------------------------------------------------

/// The full matrix on the paper's kernels at test scale: correct output
/// everywhere, CC bit-identity, slack bounds with the oracle armed.
/// Minutes in debug mode — gated out of the default test pass.
#[test]
#[ignore = "heavy: full scheme × paper-kernel matrix; run in CI's --ignored pass"]
fn full_matrix_on_the_paper_kernels() {
    let n = 4;
    for w in paper_suite(n, Scale::Test) {
        let c = tracking_cfg(n);
        let cc = run_parallel(&w.program, Scheme::CycleByCycle, &c);
        assert_sane(&w, &cc, &format!("{} threaded CC", w.name));
        assert_eq!(cc.violations.total(), 0, "{} CC violated", w.name);
        for scheme in scheme_matrix() {
            let threaded = run_parallel(&w.program, scheme, &c);
            assert_sane(&w, &threaded, &format!("{} threaded {scheme}", w.name));
            for seed in &SEEDS[..2] {
                let r = run_det(&w.program, scheme, &c, *seed);
                assert_sane(&w, &r, &format!("{} det {scheme} seed {seed}", w.name));
                if scheme == Scheme::CycleByCycle {
                    assert_eq!(
                        r.fingerprint(),
                        cc.fingerprint(),
                        "{}: CC must be schedule-independent (seed {seed})",
                        w.name
                    );
                }
            }
        }
    }
}
