//! End-to-end engine tests: multithreaded workloads under every scheme.

use sk_core::{run_parallel, run_sequential, CoreModel, Scheme, StopCondition, TargetConfig};
use sk_isa::{Program, ProgramBuilder, Reg, Syscall};

/// Build the canonical shared-counter workload: `n` threads each add their
/// tid-distinct contribution to a lock-protected counter `iters` times,
/// meet at a barrier, then thread 0 prints the total and everyone exits.
fn counter_workload(n: usize, iters: i64) -> Program {
    let a0 = Reg::arg(0);
    let a1 = Reg::arg(1);
    let mut b = ProgramBuilder::new();
    let counter = b.zeros("counter", 1);

    let worker = b.new_label("worker");
    let main = b.here("main");
    // init_lock(0); init_barrier(1, n)
    b.li(a0, 0);
    b.sys(Syscall::InitLock);
    b.li(a0, 1);
    b.li(a1, n as i64);
    b.sys(Syscall::InitBarrier);
    // spawn workers 1..n
    for _ in 1..n {
        b.la_text(a0, worker);
        b.li(a1, 0);
        b.sys(Syscall::Spawn);
    }
    b.sys(Syscall::RoiBegin);
    b.j(worker);

    // worker: for iters { lock; counter += tid+1; unlock } ; barrier
    b.bind(worker);
    let t_iter = Reg::saved(0);
    let t_addr = Reg::saved(1);
    let t_val = Reg::tmp(1);
    let t_inc = Reg::saved(2);
    b.li(t_iter, iters);
    b.li(t_addr, counter as i64);
    b.sys(Syscall::GetTid); // a0 = tid
    b.addi(t_inc, a0, 1);
    let loop_top = b.here("loop");
    b.li(a0, 0);
    b.sys(Syscall::Lock);
    b.ld(t_val, t_addr, 0);
    b.add(t_val, t_val, t_inc);
    b.st(t_val, t_addr, 0);
    b.li(a0, 0);
    b.sys(Syscall::Unlock);
    b.addi(t_iter, t_iter, -1);
    b.bne(t_iter, Reg::ZERO, loop_top);
    // barrier
    b.li(a0, 1);
    b.sys(Syscall::Barrier);
    // thread 0 prints the final counter
    let done = b.new_label("done");
    b.sys(Syscall::GetTid);
    b.bne(a0, Reg::ZERO, done);
    b.ld(a0, t_addr, 0);
    b.sys(Syscall::PrintInt);
    b.bind(done);
    b.sys(Syscall::Exit);

    b.entry(main);
    b.build().unwrap()
}

fn expected_total(n: usize, iters: i64) -> i64 {
    (1..=n as i64).sum::<i64>() * iters
}

fn small_cfg(n: usize, model: CoreModel) -> TargetConfig {
    let mut cfg = TargetConfig::small(n);
    cfg.core.model = model;
    cfg.max_cycles = 5_000_000;
    cfg
}

#[test]
fn sequential_engine_runs_multithreaded_workload() {
    let n = 4;
    let p = counter_workload(n, 5);
    let cfg = small_cfg(n, CoreModel::InOrder);
    let r = run_sequential(&p, &cfg);
    assert_eq!(r.printed(), vec![(0, expected_total(n, 5))]);
    assert!(r.exec_cycles > 0 && r.exec_cycles < cfg.max_cycles);
    assert_eq!(r.sync.barrier_episodes, 1);
    assert!(r.sync.lock_acquisitions >= (n as u64) * 5);
    // All four threads did work.
    for c in 0..n {
        assert!(r.cores[c].committed > 0, "core {c} committed nothing");
    }
}

#[test]
fn sequential_engine_is_deterministic() {
    let n = 4;
    let p = counter_workload(n, 5);
    let cfg = small_cfg(n, CoreModel::InOrder);
    let a = run_sequential(&p, &cfg);
    let b = run_sequential(&p, &cfg);
    assert_eq!(a.exec_cycles, b.exec_cycles);
    assert_eq!(a.total_committed(), b.total_committed());
    assert_eq!(a.dir, b.dir);
}

#[test]
fn parallel_cc_matches_sequential_exactly() {
    let n = 4;
    let p = counter_workload(n, 5);
    let cfg = small_cfg(n, CoreModel::InOrder);
    let seq = run_sequential(&p, &cfg);
    let par = run_parallel(&p, Scheme::CycleByCycle, &cfg);
    assert_eq!(par.printed(), seq.printed());
    assert_eq!(
        par.exec_cycles, seq.exec_cycles,
        "parallel CC must be cycle-exact against the sequential reference"
    );
    for c in 0..n {
        assert_eq!(par.cores[c].committed, seq.cores[c].committed, "core {c} committed");
    }
    assert_eq!(par.dir.gets, seq.dir.gets);
    assert_eq!(par.dir.getm, seq.dir.getm);
    assert_eq!(par.dir.invalidations_out, seq.dir.invalidations_out);
}

#[test]
fn parallel_cc_matches_sequential_with_ooo_cores() {
    let n = 2;
    let p = counter_workload(n, 4);
    let cfg = small_cfg(n, CoreModel::OutOfOrder);
    let seq = run_sequential(&p, &cfg);
    let par = run_parallel(&p, Scheme::CycleByCycle, &cfg);
    assert_eq!(par.printed(), seq.printed());
    assert_eq!(par.exec_cycles, seq.exec_cycles);
}

#[test]
fn all_schemes_execute_workload_correctly() {
    let n = 4;
    let iters = 5;
    let p = counter_workload(n, iters);
    let cfg = small_cfg(n, CoreModel::InOrder);
    for scheme in Scheme::paper_suite(cfg.critical_latency()) {
        let r = run_parallel(&p, scheme, &cfg);
        assert_eq!(
            r.printed(),
            vec![(0, expected_total(n, iters))],
            "scheme {scheme} corrupted the workload"
        );
        assert!(r.exec_cycles > 0);
    }
}

#[test]
fn adaptive_quantum_scheme_runs() {
    let n = 4;
    let p = counter_workload(n, 5);
    let cfg = small_cfg(n, CoreModel::InOrder);
    let r = run_parallel(&p, Scheme::AdaptiveQuantum { min: 10, max: 1000 }, &cfg);
    assert_eq!(r.printed(), vec![(0, expected_total(n, 5))]);
    assert!(r.engine.final_quantum >= 10);
}

#[test]
fn conservative_schemes_match_cc_exec_time() {
    // Q10, L10 and S9* are conservative: with quantum/lookahead at the
    // critical latency they must report the same execution time as CC.
    let n = 4;
    let p = counter_workload(n, 5);
    let cfg = small_cfg(n, CoreModel::InOrder);
    let base = run_sequential(&p, &cfg);
    let crit = cfg.critical_latency();
    for scheme in
        [Scheme::Quantum(crit), Scheme::Lookahead(crit), Scheme::OldestFirstBounded(crit - 1)]
    {
        let r = run_parallel(&p, scheme, &cfg);
        assert_eq!(r.printed(), base.printed(), "{scheme}");
        // Event processing granularity differs, so allow sub-percent skew,
        // but conservative schemes may not drift materially.
        let err = r.exec_time_error(&base);
        assert!(err < 0.01, "{scheme} exec-time error {err} vs CC");
    }
}

#[test]
fn bounded_slack_error_is_small_and_unbounded_larger() {
    let n = 4;
    let p = counter_workload(n, 8);
    let cfg = small_cfg(n, CoreModel::InOrder);
    let base = run_sequential(&p, &cfg);
    let s9 = run_parallel(&p, Scheme::BoundedSlack(9), &cfg);
    assert_eq!(s9.printed(), base.printed());
    // Slack errors are run-dependent (host scheduling); on this tiny
    // lock-heavy kernel they stay within a few percent. The paper-scale
    // accuracy claims are exercised by the Table 3 harness on the full
    // kernels, not here.
    let err9 = s9.exec_time_error(&base);
    assert!(err9 < 0.15, "S9 error {err9} implausibly large");
    let su = run_parallel(&p, Scheme::Unbounded, &cfg);
    assert_eq!(su.printed(), base.printed());
}

#[test]
fn observed_slack_respects_bound() {
    // On a compute-only workload the only clock fast-forwards are the
    // Spawn replies (one sync latency each), and ticking is strictly
    // window-gated in between — so the observed slack is bounded by the
    // scheme bound plus one critical latency. (With locks/barriers the
    // asynchronously-sampled diagnostic gets spikier.)
    let n = 4;
    let mut b = ProgramBuilder::new();
    let worker = b.new_label("worker");
    let main = b.here("main");
    for _ in 1..n {
        b.la_text(Reg::arg(0), worker);
        b.li(Reg::arg(1), 0);
        b.sys(Syscall::Spawn);
    }
    b.j(worker);
    b.bind(worker);
    b.li(Reg::saved(0), 500);
    let top = b.here("top");
    b.addi(Reg::tmp(0), Reg::tmp(0), 1);
    b.addi(Reg::saved(0), Reg::saved(0), -1);
    b.bne(Reg::saved(0), Reg::ZERO, top);
    b.sys(Syscall::Exit);
    b.entry(main);
    let p = b.build().unwrap();

    let cfg = small_cfg(n, CoreModel::InOrder);
    let crit = cfg.critical_latency();
    let s9 = run_parallel(&p, Scheme::BoundedSlack(9), &cfg);
    assert!(
        s9.engine.max_observed_slack <= 9 + crit,
        "observed slack {} exceeds the S9 bound + critical latency",
        s9.engine.max_observed_slack
    );
    // CC still fast-forwards across the Spawn syscall's reply latency
    // (the spawning core suspends for critical-latency cycles), so the
    // sampled diagnostic can briefly read up to 1 + critical latency.
    let cc = run_parallel(&p, Scheme::CycleByCycle, &cfg);
    assert!(cc.engine.max_observed_slack <= 1 + crit, "CC slack {}", cc.engine.max_observed_slack);
}

#[test]
fn violation_tracking_counts_conflicting_accesses() {
    // A racy workload: threads hammer the same word WITHOUT a lock. Under
    // unbounded slack with violation tracking on, conflicting-pair
    // inversions should be observable (Fig. 7); under CC there are none.
    let n = 4;
    let mut b = ProgramBuilder::new();
    let word = b.zeros("word", 1);
    let worker = b.new_label("worker");
    let main = b.here("main");
    for _ in 1..n {
        b.la_text(Reg::arg(0), worker);
        b.li(Reg::arg(1), 0);
        b.sys(Syscall::Spawn);
    }
    b.j(worker);
    b.bind(worker);
    b.li(Reg::saved(0), 200);
    b.li(Reg::saved(1), word as i64);
    let top = b.here("top");
    b.ld(Reg::tmp(1), Reg::saved(1), 0);
    b.addi(Reg::tmp(1), Reg::tmp(1), 1);
    b.st(Reg::tmp(1), Reg::saved(1), 0);
    b.addi(Reg::saved(0), Reg::saved(0), -1);
    b.bne(Reg::saved(0), Reg::ZERO, top);
    b.sys(Syscall::Exit);
    b.entry(main);
    let p = b.build().unwrap();

    let mut cfg = small_cfg(n, CoreModel::InOrder);
    cfg.track_workload_violations = true;
    let cc = run_parallel(&p, Scheme::CycleByCycle, &cfg);
    assert_eq!(cc.violations.total(), 0, "CC must be violation-free");
    // SU is *allowed* to produce violations; we only assert the machinery
    // does not corrupt the run (threads complete).
    let su = run_parallel(&p, Scheme::Unbounded, &cfg);
    assert!(su.exec_cycles > 0);
}

#[test]
fn fast_forward_compensation_injects_stalls_only_when_violating() {
    let n = 2;
    let p = counter_workload(n, 5);
    let mut cfg = small_cfg(n, CoreModel::InOrder);
    cfg.track_workload_violations = true;
    cfg.fast_forward_compensation = true;
    // Lock-protected workload under CC: no violations, no compensation.
    let r = run_parallel(&p, Scheme::CycleByCycle, &cfg);
    assert_eq!(r.violations.compensations, 0);
    assert_eq!(r.printed(), vec![(0, expected_total(n, 5))]);
}

#[test]
fn roi_instruction_budget_stops_simulation() {
    // An infinite loop after RoiBegin: only the instruction budget stops it.
    let mut b = ProgramBuilder::new();
    b.sys(Syscall::RoiBegin);
    let top = b.here("spin");
    b.addi(Reg::tmp(0), Reg::tmp(0), 1);
    b.j(top);
    let p = b.build().unwrap();
    let mut cfg = small_cfg(1, CoreModel::InOrder);
    cfg.stop = StopCondition::RoiInstructions(10_000);
    let r = run_parallel(&p, Scheme::BoundedSlack(9), &cfg);
    assert!(r.total_roi_committed() >= 10_000);
    assert!(r.total_committed() < 200_000, "should stop soon after the budget");
}

#[test]
fn max_cycles_backstop_prevents_hangs() {
    // Deadlock: barrier initialized for 2 participants, only 1 arrives.
    let mut b = ProgramBuilder::new();
    b.li(Reg::arg(0), 0);
    b.li(Reg::arg(1), 2);
    b.sys(Syscall::InitBarrier);
    b.li(Reg::arg(0), 0);
    b.sys(Syscall::Barrier);
    b.sys(Syscall::Exit);
    let p = b.build().unwrap();
    let mut cfg = small_cfg(1, CoreModel::InOrder);
    cfg.max_cycles = 20_000;
    let r = run_parallel(&p, Scheme::CycleByCycle, &cfg);
    // The deadlocked barrier is detected by the manager's quiescence
    // backstop (the waiting core's clock is suspended, so the run ends
    // without burning 20k simulated cycles).
    assert_eq!(r.sync.barrier_episodes, 0, "barrier must never release");
    assert!(r.exec_cycles < 20_000, "quiescence detection beats the cycle cap");
}

#[test]
fn semaphores_order_producer_consumer() {
    // Thread 0 produces a value then signals; thread 1 waits then reads.
    let n = 2;
    let a0 = Reg::arg(0);
    let a1 = Reg::arg(1);
    let mut b = ProgramBuilder::new();
    let slot = b.zeros("slot", 1);
    let consumer = b.new_label("consumer");
    let main = b.here("main");
    b.li(a0, 0);
    b.li(a1, 0);
    b.sys(Syscall::InitSema);
    b.la_text(a0, consumer);
    b.li(a1, 0);
    b.sys(Syscall::Spawn);
    // produce
    b.li(Reg::tmp(0), 9876);
    b.li(Reg::tmp(1), slot as i64);
    b.st(Reg::tmp(0), Reg::tmp(1), 0);
    b.li(a0, 0);
    b.sys(Syscall::SemaSignal);
    b.sys(Syscall::Exit);
    // consume
    b.bind(consumer);
    b.li(a0, 0);
    b.sys(Syscall::SemaWait);
    b.li(Reg::tmp(1), slot as i64);
    b.ld(a0, Reg::tmp(1), 0);
    b.sys(Syscall::PrintInt);
    b.sys(Syscall::Exit);
    b.entry(main);
    let p = b.build().unwrap();

    let cfg = small_cfg(n, CoreModel::InOrder);
    for scheme in [Scheme::CycleByCycle, Scheme::BoundedSlack(9), Scheme::Unbounded] {
        let r = run_parallel(&p, scheme, &cfg);
        assert_eq!(r.printed(), vec![(1, 9876)], "{scheme}");
    }
}

#[test]
fn sharded_memory_managers_are_cycle_exact_for_conservative_schemes() {
    // The paper's §2.2 extension: split the manager into several threads.
    // The frontier backpressure makes conservative schemes cycle-exact
    // against the single-manager engine at any shard count; eager schemes
    // keep their outputs and gain manager throughput.
    let n = 4;
    let p = counter_workload(n, 6);
    let mut cfg = small_cfg(n, CoreModel::InOrder);
    let base = run_sequential(&p, &cfg);
    for shards in [1usize, 2, 4] {
        cfg.mem_shards = shards;
        for scheme in [
            Scheme::CycleByCycle,
            Scheme::OldestFirstBounded(9),
            Scheme::BoundedSlack(9),
            Scheme::Unbounded,
        ] {
            let r = run_parallel(&p, scheme, &cfg);
            assert_eq!(r.printed(), base.printed(), "shards={shards} {scheme}");
            if scheme.is_conservative() {
                // Deterministic; timing may differ from the single manager
                // only via per-shard interconnect channels (here the
                // shared bus is uncontended, so it is exactly equal).
                let r2 = run_parallel(&p, scheme, &cfg);
                assert_eq!(r.exec_cycles, r2.exec_cycles, "shards={shards} {scheme} determinism");
                let err = r.exec_time_error(&base);
                assert!(err < 0.01, "shards={shards} {scheme} err {err}");
            }
        }
    }
}

#[test]
fn batched_transport_is_deterministic_under_tiny_rings() {
    // Regression test for the batched SPSC transport: with an absurdly
    // small ring capacity every queue wraps constantly and push_batch /
    // drain_into hit their partial-transfer paths, yet CC and S* must
    // stay bit-identical run to run — same event counts, same violation
    // counts, same per-core cycles.
    let n = 4;
    let p = counter_workload(n, 6);
    let mut cfg = small_cfg(n, CoreModel::InOrder);
    cfg.queue_capacity = 4; // stress wraparound + backpressure
    cfg.track_workload_violations = true;
    for scheme in [Scheme::CycleByCycle, Scheme::OldestFirstBounded(9)] {
        let a = run_parallel(&p, scheme, &cfg);
        let b = run_parallel(&p, scheme, &cfg);
        assert_eq!(a.printed(), b.printed(), "{scheme} output");
        assert_eq!(a.exec_cycles, b.exec_cycles, "{scheme} exec time");
        assert_eq!(
            a.engine.events_processed, b.engine.events_processed,
            "{scheme} manager event count"
        );
        assert_eq!(a.violations, b.violations, "{scheme} violation counts");
        for c in 0..n {
            assert_eq!(a.cores[c].committed, b.cores[c].committed, "{scheme} core {c} committed");
            assert_eq!(a.cores[c].cycles, b.cores[c].cycles, "{scheme} core {c} cycles");
        }
        assert_eq!(a.dir, b.dir, "{scheme} directory counters");
    }
    // And the tiny-ring run must agree with the default-capacity run:
    // transport batching is not allowed to change simulated time.
    let tiny = run_parallel(&p, Scheme::CycleByCycle, &cfg);
    cfg.queue_capacity = 4096;
    let wide = run_parallel(&p, Scheme::CycleByCycle, &cfg);
    assert_eq!(tiny.exec_cycles, wide.exec_cycles, "capacity changed simulated time");
    assert_eq!(tiny.printed(), wide.printed());
}

#[test]
fn single_threaded_program_on_many_cores_parks_the_rest() {
    // A program that never spawns: cores 1..n have no thread and must not
    // slow down or corrupt the run.
    let mut b = ProgramBuilder::new();
    b.li(Reg::saved(0), 300);
    let top = b.here("top");
    b.addi(Reg::tmp(0), Reg::tmp(0), 3);
    b.addi(Reg::saved(0), Reg::saved(0), -1);
    b.bne(Reg::saved(0), Reg::ZERO, top);
    b.mv(Reg::arg(0), Reg::tmp(0));
    b.sys(Syscall::PrintInt);
    b.sys(Syscall::Exit);
    let p = b.build().unwrap();
    let cfg = small_cfg(8, CoreModel::InOrder);
    let seq = run_sequential(&p, &cfg);
    let par = run_parallel(&p, Scheme::BoundedSlack(9), &cfg);
    assert_eq!(seq.printed(), vec![(0, 900)]);
    assert_eq!(par.printed(), vec![(0, 900)]);
    for c in 1..8 {
        assert_eq!(par.cores[c].committed, 0, "core {c} should have no thread");
    }
}

#[test]
fn roi_budget_works_on_the_sequential_engine() {
    let mut b = ProgramBuilder::new();
    b.sys(Syscall::RoiBegin);
    let top = b.here("spin");
    b.addi(Reg::tmp(0), Reg::tmp(0), 1);
    b.j(top);
    let p = b.build().unwrap();
    let mut cfg = small_cfg(1, CoreModel::InOrder);
    cfg.stop = StopCondition::RoiInstructions(5_000);
    let r = run_sequential(&p, &cfg);
    assert!(r.total_roi_committed() >= 5_000);
    assert!(r.total_committed() < 100_000);
}

#[test]
fn tight_mshr_and_store_buffer_configs_still_work() {
    // Starve the OoO core's structures: 1 MSHR, 1 store-buffer slot,
    // 1-wide everything. Slower, but must stay correct.
    let n = 2;
    let p = counter_workload(n, 4);
    let mut cfg = small_cfg(n, CoreModel::OutOfOrder);
    cfg.mem.mshrs = 1;
    cfg.core.store_buffer = 1;
    cfg.core.fetch_width = 1;
    cfg.core.issue_width = 1;
    cfg.core.commit_width = 1;
    cfg.core.rob_entries = 8;
    cfg.core.lsq_entries = 4;
    cfg.core.fetch_queue = 2;
    let seq = run_sequential(&p, &cfg);
    assert_eq!(seq.printed(), vec![(0, expected_total(n, 4))]);
    let par = run_parallel(&p, Scheme::CycleByCycle, &cfg);
    assert_eq!(par.exec_cycles, seq.exec_cycles, "starved config stays deterministic");
    // Wider machine must not be slower.
    let wide = run_sequential(&p, &small_cfg(n, CoreModel::OutOfOrder));
    assert!(wide.exec_cycles < seq.exec_cycles, "{} < {}", wide.exec_cycles, seq.exec_cycles);
}

#[test]
fn fast_forward_reduces_violations_on_racy_code() {
    // Inline racy workload (cannot use sk-kernels here: it depends on us).
    let n = 4;
    let mut b = ProgramBuilder::new();
    let word = b.zeros("word", 1);
    let worker = b.new_label("worker");
    let main = b.here("main");
    for _ in 1..n {
        b.la_text(Reg::arg(0), worker);
        b.li(Reg::arg(1), 0);
        b.sys(Syscall::Spawn);
    }
    b.j(worker);
    b.bind(worker);
    b.li(Reg::saved(0), 150);
    b.li(Reg::saved(1), word as i64);
    let top = b.here("top");
    b.ld(Reg::tmp(1), Reg::saved(1), 0);
    b.addi(Reg::tmp(1), Reg::tmp(1), 1);
    b.st(Reg::tmp(1), Reg::saved(1), 0);
    b.addi(Reg::saved(0), Reg::saved(0), -1);
    b.bne(Reg::saved(0), Reg::ZERO, top);
    b.sys(Syscall::Exit);
    b.entry(main);
    let p = b.build().unwrap();

    let mut cfg = small_cfg(4, CoreModel::InOrder);
    cfg.track_workload_violations = true;
    // Without compensation, SU on racy code usually shows violations;
    // with compensation, stalls are injected whenever anything was
    // compensated.
    let plain = run_parallel(&p, Scheme::Unbounded, &cfg);
    cfg.fast_forward_compensation = true;
    let ff = run_parallel(&p, Scheme::Unbounded, &cfg);
    assert_eq!(ff.violations.compensations > 0, ff.violations.compensation_cycles > 0);
    // Functional completion in both modes.
    assert!(plain.exec_cycles > 0 && ff.exec_cycles > 0);
}

#[test]
fn trace_recording_produces_per_core_traces() {
    let n = 2;
    let p = counter_workload(n, 3);
    let mut cfg = small_cfg(n, CoreModel::InOrder);
    cfg.record_trace = true;
    let r = run_parallel(&p, Scheme::BoundedSlack(9), &cfg);
    let traces = r.traces.as_ref().expect("traces recorded");
    assert_eq!(traces.len(), n);
    for (c, t) in traces.iter().enumerate() {
        assert_eq!(t.len() as u64, r.cores[c].cycles, "trace length = cycles for core {c}");
        assert!(t.iter().any(|&w| w > 0));
    }
}
