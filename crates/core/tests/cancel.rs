//! Cooperative cancellation: `Engine::cancel_token` + `RunOutcome::Cancelled`.
//!
//! The contract under test: raising the token stops the segment at the
//! next manager iteration with checkpoint-style teardown, so a cancelled
//! engine can either *continue* (clear the flag, run again) or be
//! abandoned in favour of a resume from its last snapshot — and for
//! conservative schemes both paths finish bit-identical to an
//! uninterrupted run. This is what lets a job server kill a job without
//! corrupting the warm-start snapshot it already cached.

use sk_core::engine::{Engine, RunOutcome};
use sk_core::{run_parallel, CoreModel, Scheme, SimReport, TargetConfig};
use sk_isa::{Program, ProgramBuilder, Reg, Syscall};
use std::sync::atomic::Ordering;

/// Lock-serialized shared counter (same shape as the snapshot tests'
/// canonical workload): `n` threads each add `tid+1` to a lock-protected
/// counter `iters` times, meet at a barrier, thread 0 prints the total.
fn counter_workload(n: usize, iters: i64) -> Program {
    let a0 = Reg::arg(0);
    let a1 = Reg::arg(1);
    let mut b = ProgramBuilder::new();
    let counter = b.zeros("counter", 1);

    let worker = b.new_label("worker");
    let main = b.here("main");
    b.li(a0, 0);
    b.sys(Syscall::InitLock);
    b.li(a0, 1);
    b.li(a1, n as i64);
    b.sys(Syscall::InitBarrier);
    for _ in 1..n {
        b.la_text(a0, worker);
        b.li(a1, 0);
        b.sys(Syscall::Spawn);
    }
    b.sys(Syscall::RoiBegin);
    b.j(worker);

    b.bind(worker);
    let t_iter = Reg::saved(0);
    let t_addr = Reg::saved(1);
    let t_val = Reg::tmp(1);
    let t_inc = Reg::saved(2);
    b.li(t_iter, iters);
    b.li(t_addr, counter as i64);
    b.sys(Syscall::GetTid);
    b.addi(t_inc, a0, 1);
    let loop_top = b.here("loop");
    b.li(a0, 0);
    b.sys(Syscall::Lock);
    b.ld(t_val, t_addr, 0);
    b.add(t_val, t_val, t_inc);
    b.st(t_val, t_addr, 0);
    b.li(a0, 0);
    b.sys(Syscall::Unlock);
    b.addi(t_iter, t_iter, -1);
    b.bne(t_iter, Reg::ZERO, loop_top);
    b.li(a0, 1);
    b.sys(Syscall::Barrier);
    let done = b.new_label("done");
    b.sys(Syscall::GetTid);
    b.bne(a0, Reg::ZERO, done);
    b.ld(a0, t_addr, 0);
    b.sys(Syscall::PrintInt);
    b.bind(done);
    b.sys(Syscall::Exit);

    b.entry(main);
    b.build().unwrap()
}

fn small_cfg(n: usize) -> TargetConfig {
    let mut cfg = TargetConfig::small(n);
    cfg.core.model = CoreModel::InOrder;
    cfg.max_cycles = 5_000_000;
    cfg.track_workload_violations = true;
    cfg
}

fn assert_same_run(a: &SimReport, b: &SimReport, what: &str) {
    assert_eq!(a.fingerprint(), b.fingerprint(), "{what}: fingerprints diverge");
    assert_eq!(a.printed(), b.printed(), "{what}: printed output");
}

#[test]
fn preset_token_cancels_and_the_run_continues_identically() {
    let p = counter_workload(4, 5);
    let cfg = small_cfg(4);
    let full = run_parallel(&p, Scheme::CycleByCycle, &cfg);

    let mut e = Engine::new(&p, Scheme::CycleByCycle, &cfg);
    let token = e.cancel_token();
    token.store(true, Ordering::Relaxed);
    assert_eq!(e.run_until(None), RunOutcome::Cancelled);
    assert!(!e.is_finished(), "a cancelled engine is not finished");
    // Sticky until cleared: running again cancels again.
    assert_eq!(e.run_until(None), RunOutcome::Cancelled);

    token.store(false, Ordering::Relaxed);
    assert_eq!(e.run_until(None), RunOutcome::Finished);
    assert_same_run(&full, &e.into_report(), "cancel-at-start then continue");
}

#[test]
fn cancelled_run_resumes_cleanly_from_its_last_snapshot() {
    let p = counter_workload(4, 5);
    let cfg = small_cfg(4);
    let full = run_parallel(&p, Scheme::CycleByCycle, &cfg);
    let end = full.cores.iter().map(|c| c.cycles).max().unwrap_or(0);
    let mid = end / 2;
    assert!(mid > 0, "degenerate run");

    // Reach the mid-run safe-point and keep its snapshot (the warm-start
    // cache entry in server terms).
    let mut e = Engine::new(&p, Scheme::CycleByCycle, &cfg);
    assert_eq!(e.run_until(Some(mid)), RunOutcome::CheckpointReady);
    let bytes = e.snapshot().expect("snapshot at the mid-run safe-point");

    // The continuation gets quota-killed...
    e.cancel_token().store(true, Ordering::Relaxed);
    assert_eq!(e.run_until(None), RunOutcome::Cancelled);
    drop(e);

    // ...and the job re-runs later from the cached snapshot, finishing
    // bit-identical to the uninterrupted reference.
    let mut r = Engine::resume(&bytes, None).expect("resume from snapshot");
    assert_eq!(r.run_until(None), RunOutcome::Finished);
    assert_same_run(&full, &r.into_report(), "cancel then resume-from-snapshot");
}

#[test]
fn async_cancel_mid_flight_is_clean() {
    // Longer run so an asynchronous cancel usually lands mid-simulation;
    // either outcome is legal (the run may win the race), but a cancelled
    // engine must continue to the bit-identical result.
    let p = counter_workload(4, 400);
    let cfg = small_cfg(4);
    let full = run_parallel(&p, Scheme::CycleByCycle, &cfg);

    let mut e = Engine::new(&p, Scheme::CycleByCycle, &cfg);
    let token = e.cancel_token();
    let killer = std::thread::spawn(move || {
        std::thread::sleep(std::time::Duration::from_millis(2));
        token.store(true, Ordering::Relaxed);
    });
    let mut outcome = e.run_until(None);
    killer.join().unwrap();
    let mut cancels = 0u32;
    while outcome == RunOutcome::Cancelled {
        cancels += 1;
        e.cancel_token().store(false, Ordering::Relaxed);
        outcome = e.run_until(None);
    }
    assert_eq!(outcome, RunOutcome::Finished);
    assert!(cancels <= 1, "one raise of the token cancels at most one segment");
    assert_same_run(&full, &e.into_report(), "async cancel then continue");
}
