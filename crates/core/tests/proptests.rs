//! Property tests for the engine's core data structures.

use proptest::prelude::*;
use sk_core::clock::{ClockBoard, CoreState};
use sk_core::violation::ConflictTracker;
use sk_core::Scheme;

fn arb_scheme() -> impl Strategy<Value = Scheme> {
    prop_oneof![
        Just(Scheme::CycleByCycle),
        (1u64..200).prop_map(Scheme::Quantum),
        (1u64..200).prop_map(Scheme::Lookahead),
        (1u64..200).prop_map(Scheme::BoundedSlack),
        (1u64..200).prop_map(Scheme::OldestFirstBounded),
        Just(Scheme::Unbounded),
    ]
}

proptest! {
    /// Window algebra: monotone in g, always allows progress, and the
    /// short-name round-trips through the parser.
    #[test]
    fn scheme_window_algebra(scheme in arb_scheme(), g0 in 0u64..1_000_000, steps in 1u64..200) {
        let mut prev = scheme.window(g0);
        prop_assert!(prev > g0 || prev == u64::MAX);
        for g in g0 + 1..g0 + steps {
            let w = scheme.window(g);
            prop_assert!(w >= prev, "{scheme} window regressed at g={g}");
            prop_assert!(w > g || w == u64::MAX, "{scheme} denies progress at g={g}");
            prev = w;
        }
        prop_assert_eq!(scheme.short_name().parse::<Scheme>().unwrap(), scheme);
    }

    /// The clock board's paper invariant `global <= local_i <= max_local_i`
    /// holds under arbitrary interleavings of advances, window raises and
    /// global recomputations.
    #[test]
    fn clock_invariant_under_random_ops(
        ops in proptest::collection::vec((0u8..3, 0usize..4, 1u64..50), 1..300)
    ) {
        let board = ClockBoard::new(4, 10);
        for (op, core, amount) in ops {
            match op {
                0 => {
                    // advance the core within its window
                    for _ in 0..amount {
                        let l = board.local(core);
                        if board.may_advance(core, l) {
                            board.advance_local(core, l + 1);
                        } else {
                            break;
                        }
                    }
                }
                1 => {
                    let (g, _) = board.recompute_global();
                    // raise this core's window per a CC-ish rule
                    board.raise_max_local(core, g + amount);
                }
                _ => {
                    board.recompute_global();
                }
            }
            let g = board.global();
            for c in 0..4 {
                let l = board.local(c);
                prop_assert!(g <= l, "global {g} > local {l} of core {c}");
                prop_assert!(l <= board.max_local(c), "core {c} past its window");
            }
        }
    }

    /// Parked cores never hold the global minimum back, and unparking
    /// restores them.
    #[test]
    fn parking_excludes_from_global(advances in 1u64..100) {
        let board = ClockBoard::new(2, u64::MAX);
        board.park(1);
        for i in 1..=advances {
            board.advance_local(0, i);
        }
        let (g, done) = board.recompute_global();
        prop_assert_eq!(g, advances, "parked core held global back");
        prop_assert!(!done || advances == 0);
        board.unpark(1);
        prop_assert_eq!(board.state(1), CoreState::Running);
        let (g2, _) = board.recompute_global();
        // Global is monotone even though core 1 is behind.
        prop_assert_eq!(g2, g);
    }

    /// The conflict tracker flags an inversion exactly when a reference
    /// per-word model does.
    #[test]
    fn tracker_matches_reference(
        ops in proptest::collection::vec(
            (any::<bool>(), 0usize..3, 0u64..4, 0u64..100), 1..300)
    ) {
        let tracker = ConflictTracker::new(false);
        #[derive(Default, Clone, Copy)]
        struct Ref { st: u64, sc: usize, lt: u64, lc: usize }
        let mut model = [Ref::default(); 4];
        let mut expected_total = 0u64;
        for (is_store, core, word, ts) in ops {
            let addr = 0x1000 + word * 8;
            let m = &mut model[word as usize];
            if is_store {
                let v = tracker.record_store(core, addr, ts);
                let expect = m.lt > ts && m.lc != core;
                prop_assert_eq!(v.violated, expect);
                if expect { expected_total += 1; }
                if ts >= m.st { m.st = ts; m.sc = core; }
            } else {
                let v = tracker.record_load(core, addr, ts);
                let expect = m.st > ts && m.sc != core;
                prop_assert_eq!(v.violated, expect);
                if expect { expected_total += 1; }
                if ts >= m.lt { m.lt = ts; m.lc = core; }
            }
        }
        prop_assert_eq!(tracker.stats.total(), expected_total);
    }

    /// Fast-forward compensation never moves a timestamp backwards, and
    /// the reported stall is exactly the bump.
    #[test]
    fn compensation_is_forward_only(
        ops in proptest::collection::vec((any::<bool>(), 0usize..3, 0u64..100), 1..200)
    ) {
        let tracker = ConflictTracker::new(true);
        for (is_store, core, ts) in ops {
            let r = if is_store {
                tracker.record_store(core, 0x2000, ts)
            } else {
                tracker.record_load(core, 0x2000, ts)
            };
            prop_assert!(r.effective_ts >= ts);
            prop_assert_eq!(r.stall, r.effective_ts - ts);
        }
    }
}
