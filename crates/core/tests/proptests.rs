//! Property tests for the engine's core data structures.

use proptest::prelude::*;
use sk_core::clock::{ClockBoard, CoreState, GlobalCache};
use sk_core::spsc;
use sk_core::violation::ConflictTracker;
use sk_core::Scheme;
use sk_snap::{Reader, SnapError, Writer};

/// One primitive snapshot field, for round-trip sequences.
#[derive(Debug, Clone, PartialEq)]
enum Field {
    U8(u8),
    U16(u16),
    U32(u32),
    U64(u64),
    I64(i64),
    F64(f64),
    Bool(bool),
    Usize(usize),
    Str(String),
    Bytes(Vec<u8>),
}

fn arb_field() -> impl Strategy<Value = Field> {
    prop_oneof![
        any::<u8>().prop_map(Field::U8),
        any::<u16>().prop_map(Field::U16),
        any::<u32>().prop_map(Field::U32),
        any::<u64>().prop_map(Field::U64),
        any::<i64>().prop_map(Field::I64),
        // Finite floats only: NaN never compares equal, and the engine
        // never snapshots non-finite values.
        any::<i64>().prop_map(|v| Field::F64(v as f64 / 3.0)),
        any::<bool>().prop_map(Field::Bool),
        any::<usize>().prop_map(Field::Usize),
        proptest::collection::vec(32u8..127, 0..24)
            .prop_map(|v| Field::Str(String::from_utf8(v).unwrap())),
        proptest::collection::vec(any::<u8>(), 0..48).prop_map(Field::Bytes),
    ]
}

fn write_field(w: &mut Writer, f: &Field) {
    match f {
        Field::U8(v) => w.put_u8(*v),
        Field::U16(v) => w.put_u16(*v),
        Field::U32(v) => w.put_u32(*v),
        Field::U64(v) => w.put_u64(*v),
        Field::I64(v) => w.put_i64(*v),
        Field::F64(v) => w.put_f64(*v),
        Field::Bool(v) => w.put_bool(*v),
        Field::Usize(v) => w.put_usize(*v),
        Field::Str(v) => w.put_str(v),
        Field::Bytes(v) => {
            w.put_usize(v.len());
            w.put_bytes(v);
        }
    }
}

fn read_field(r: &mut Reader, like: &Field) -> Result<Field, SnapError> {
    Ok(match like {
        Field::U8(_) => Field::U8(r.get_u8()?),
        Field::U16(_) => Field::U16(r.get_u16()?),
        Field::U32(_) => Field::U32(r.get_u32()?),
        Field::U64(_) => Field::U64(r.get_u64()?),
        Field::I64(_) => Field::I64(r.get_i64()?),
        Field::F64(_) => Field::F64(r.get_f64()?),
        Field::Bool(_) => Field::Bool(r.get_bool()?),
        Field::Usize(_) => Field::Usize(r.get_usize()?),
        Field::Str(_) => Field::Str(r.get_str()?),
        Field::Bytes(_) => {
            let n = r.get_usize()?;
            Field::Bytes(r.take(n)?.to_vec())
        }
    })
}

/// Shared body of the batched-clock properties (default and deep
/// variants): drives one random op sequence against a [`ClockBoard`] and
/// checks monotonicity, window containment and memoized-reduction
/// agreement after every op.
fn check_batched_clock_ops(ops: Vec<(u8, usize, u64)>) -> Result<(), TestCaseError> {
    const N: usize = 4;
    const W0: u64 = 10;
    let board = ClockBoard::new(N, W0);
    let mut cache = GlobalCache::new(N);
    let mut prev_global = board.global();
    let mut prev_local = [0u64; N];
    let mut prev_max = [W0; N];
    for (op, core, amount) in ops {
        match op {
            0 => {
                // Batched run-ahead: publish up to `amount` cycles at
                // once, clamped to the window (only running cores
                // simulate).
                if board.state(core) == CoreState::Running {
                    let l = board.local(core);
                    let target = (l + amount).min(board.max_local(core));
                    if target > l {
                        board.advance_local_batched(core, target);
                    }
                }
            }
            1 => {
                // Manager raises this core's window off fresh global.
                let (g, _) = board.recompute_global();
                board.raise_max_local(core, g + amount);
            }
            2 => {
                // Core leaves the schedule (sync or no thread).
                if board.state(core) == CoreState::Running {
                    if amount.is_multiple_of(2) {
                        board.park(core);
                    } else {
                        board.sync_park(core);
                    }
                }
            }
            3 => {
                // Core resumes: the engine jumps a resumed clock
                // forward so it cannot drag the (already published)
                // global minimum backwards.
                if board.state(core) != CoreState::Running {
                    board.unpark(core);
                    board.jump_local(core, board.global());
                }
            }
            _ => {
                board.recompute_global();
            }
        }
        // Monotonicity and window containment after every op.
        let g = board.global();
        prop_assert!(g >= prev_global, "global regressed {prev_global} -> {g}");
        prev_global = g;
        for c in 0..N {
            let l = board.local(c);
            let m = board.max_local(c);
            prop_assert!(l >= prev_local[c], "core {c} local regressed");
            prop_assert!(m >= prev_max[c], "core {c} window regressed");
            prop_assert!(l <= m, "core {c} local {l} passed its window {m}");
            prev_local[c] = l;
            prev_max[c] = m;
        }
        // The memoized reduction and the full reduction agree. Order
        // matters for the proof: the cached call runs first, so a
        // stale cache would surface as a mismatch here rather than
        // being masked by the uncached call refreshing `global`.
        let cached = board.recompute_global_cached(&mut cache);
        let plain = board.recompute_global();
        prop_assert_eq!(cached, plain, "memoized reduction diverged");
        // And a second cached call with nothing moved must hit the
        // cache and still agree.
        prop_assert_eq!(board.recompute_global_cached(&mut cache), plain);
    }
    Ok(())
}

fn arb_scheme() -> impl Strategy<Value = Scheme> {
    prop_oneof![
        Just(Scheme::CycleByCycle),
        (1u64..200).prop_map(Scheme::Quantum),
        (1u64..200).prop_map(Scheme::Lookahead),
        (1u64..200).prop_map(Scheme::BoundedSlack),
        (1u64..200).prop_map(Scheme::OldestFirstBounded),
        Just(Scheme::Unbounded),
    ]
}

proptest! {
    /// Window algebra: monotone in g, always allows progress, and the
    /// short-name round-trips through the parser.
    #[test]
    fn scheme_window_algebra(scheme in arb_scheme(), g0 in 0u64..1_000_000, steps in 1u64..200) {
        let mut prev = scheme.window(g0);
        prop_assert!(prev > g0 || prev == u64::MAX);
        for g in g0 + 1..g0 + steps {
            let w = scheme.window(g);
            prop_assert!(w >= prev, "{scheme} window regressed at g={g}");
            prop_assert!(w > g || w == u64::MAX, "{scheme} denies progress at g={g}");
            prev = w;
        }
        prop_assert_eq!(scheme.short_name().parse::<Scheme>().unwrap(), scheme);
    }

    /// The clock board's paper invariant `global <= local_i <= max_local_i`
    /// holds under arbitrary interleavings of advances, window raises and
    /// global recomputations.
    #[test]
    fn clock_invariant_under_random_ops(
        ops in proptest::collection::vec((0u8..3, 0usize..4, 1u64..50), 1..300)
    ) {
        let board = ClockBoard::new(4, 10);
        for (op, core, amount) in ops {
            match op {
                0 => {
                    // advance the core within its window
                    for _ in 0..amount {
                        let l = board.local(core);
                        if board.may_advance(core, l) {
                            board.advance_local(core, l + 1);
                        } else {
                            break;
                        }
                    }
                }
                1 => {
                    let (g, _) = board.recompute_global();
                    // raise this core's window per a CC-ish rule
                    board.raise_max_local(core, g + amount);
                }
                _ => {
                    board.recompute_global();
                }
            }
            let g = board.global();
            for c in 0..4 {
                let l = board.local(c);
                prop_assert!(g <= l, "global {g} > local {l} of core {c}");
                prop_assert!(l <= board.max_local(c), "core {c} past its window");
            }
        }
    }

    /// The batched publication path under adversarial interleavings:
    /// random mixes of `advance_local_batched`, window raises,
    /// park/resume transitions and global recomputations through BOTH
    /// reduction paths. Clocks (global, locals, windows) are monotone,
    /// no local ever passes its window, and the memoized
    /// [`GlobalCache`] reduction agrees with the uncached one at every
    /// single step — including steps where nothing moved (the cache-hit
    /// fast path) and steps straddling park/unpark state flips.
    #[test]
    fn batched_clock_ops_stay_monotone_and_cache_agrees(
        ops in proptest::collection::vec((0u8..5, 0usize..4, 1u64..80), 1..300)
    ) {
        check_batched_clock_ops(ops)?;
    }

    /// Inter-shard frontier backpressure (sharded clock domains): with
    /// windows computed as `min(global, slowest shard frontier) + bound`
    /// — the sharded manager's rule for ordered schemes — no published
    /// `max_local` ever exceeds `global + bound` *or* the slowest
    /// frontier plus the bound, under random core advances, random
    /// (monotone) frontier publishes, and random manager iterations over
    /// random core/shard counts. Frontiers only rise to global times that
    /// were already computed, exactly like `MemShard::iterate`.
    #[test]
    fn sharded_frontier_backpressure_bounds_published_windows(
        n_cores in 1usize..9,
        n_shards in 1usize..6,
        bound in 1u64..50,
        ops in proptest::collection::vec((0u8..4, 0usize..16, 1u64..40), 1..300)
    ) {
        use std::sync::atomic::{AtomicU64, Ordering};
        let board = ClockBoard::new(n_cores, bound);
        let frontiers: Vec<AtomicU64> = (0..n_shards).map(|_| AtomicU64::new(0)).collect();
        let mut last_window = bound;
        for (op, idx, amount) in ops {
            match op {
                0 => {
                    // A core simulates a batch forward within its window.
                    let core = idx % n_cores;
                    if board.state(core) == CoreState::Running {
                        let l = board.local(core);
                        let target = (l + amount).min(board.max_local(core));
                        if target > l {
                            board.advance_local_batched(core, target);
                        }
                    }
                }
                1 => {
                    // A shard finishes an iteration: its frontier rises to
                    // the global time it processed through (fetch_max, so
                    // replays of a stale global are monotone no-ops).
                    let s = idx % n_shards;
                    let (g, _) = board.recompute_global();
                    frontiers[s].fetch_max(g, Ordering::Release);
                }
                _ => {
                    // A manager iteration: the ordered-scheme window rule.
                    let (g, _) = board.recompute_global();
                    let fmin =
                        frontiers.iter().map(|f| f.load(Ordering::Acquire)).min().unwrap();
                    let w = g.min(fmin) + bound;
                    if w > last_window {
                        for c in 0..n_cores {
                            board.raise_max_local(c, w);
                        }
                        last_window = w;
                    }
                }
            }
            // The backpressure invariant, after every op: published
            // windows trail both true global time and the slowest shard.
            let g = board.global();
            let fmin = frontiers.iter().map(|f| f.load(Ordering::Relaxed)).min().unwrap();
            for c in 0..n_cores {
                let m = board.max_local(c);
                prop_assert!(
                    m <= g + bound,
                    "core {c}: window {m} outruns global {g} + bound {bound}"
                );
                prop_assert!(
                    m <= fmin + bound,
                    "core {c}: window {m} outruns slowest frontier {fmin} + bound {bound}"
                );
            }
        }
    }

    /// Parked cores never hold the global minimum back, and unparking
    /// restores them.
    #[test]
    fn parking_excludes_from_global(advances in 1u64..100) {
        let board = ClockBoard::new(2, u64::MAX);
        board.park(1);
        for i in 1..=advances {
            board.advance_local(0, i);
        }
        let (g, done) = board.recompute_global();
        prop_assert_eq!(g, advances, "parked core held global back");
        prop_assert!(!done || advances == 0);
        board.unpark(1);
        prop_assert_eq!(board.state(1), CoreState::Running);
        let (g2, _) = board.recompute_global();
        // Global is monotone even though core 1 is behind.
        prop_assert_eq!(g2, g);
    }

    /// The conflict tracker flags an inversion exactly when a reference
    /// per-word model does.
    #[test]
    fn tracker_matches_reference(
        ops in proptest::collection::vec(
            (any::<bool>(), 0usize..3, 0u64..4, 0u64..100), 1..300)
    ) {
        let tracker = ConflictTracker::new(false);
        #[derive(Default, Clone, Copy)]
        struct Ref { st: u64, sc: usize, lt: u64, lc: usize }
        let mut model = [Ref::default(); 4];
        let mut expected_total = 0u64;
        for (is_store, core, word, ts) in ops {
            let addr = 0x1000 + word * 8;
            let m = &mut model[word as usize];
            if is_store {
                let v = tracker.record_store(core, addr, ts);
                let expect = m.lt > ts && m.lc != core;
                prop_assert_eq!(v.violated, expect);
                if expect { expected_total += 1; }
                if ts >= m.st { m.st = ts; m.sc = core; }
            } else {
                let v = tracker.record_load(core, addr, ts);
                let expect = m.st > ts && m.sc != core;
                prop_assert_eq!(v.violated, expect);
                if expect { expected_total += 1; }
                if ts >= m.lt { m.lt = ts; m.lc = core; }
            }
        }
        prop_assert_eq!(tracker.stats.total(), expected_total);
    }

    /// Fast-forward compensation never moves a timestamp backwards, and
    /// the reported stall is exactly the bump.
    #[test]
    fn compensation_is_forward_only(
        ops in proptest::collection::vec((any::<bool>(), 0usize..3, 0u64..100), 1..200)
    ) {
        let tracker = ConflictTracker::new(true);
        for (is_store, core, ts) in ops {
            let r = if is_store {
                tracker.record_store(core, 0x2000, ts)
            } else {
                tracker.record_load(core, 0x2000, ts)
            };
            prop_assert!(r.effective_ts >= ts);
            prop_assert_eq!(r.stall, r.effective_ts - ts);
        }
    }

    /// Single-threaded FIFO conformance of the batched SPSC API: an
    /// arbitrary interleaving of `try_push`/`push_batch` against
    /// `pop`/`drain_into` on a small (wraparound-heavy) ring loses,
    /// duplicates and reorders nothing, and every partial push is exactly
    /// the free-space prefix.
    #[test]
    fn spsc_batched_fifo_conformance(
        capacity in 1usize..9,
        ops in proptest::collection::vec((0u8..4, 1usize..7), 1..120)
    ) {
        let (mut p, mut c) = spsc::channel::<u64>(capacity);
        let mut next = 0u64; // next value to push
        let mut expect = 0u64; // next value the consumer must see
        let mut out = Vec::new();
        for (op, amount) in ops {
            let in_flight = (next - expect) as usize;
            match op {
                0 => {
                    let pushed = p.try_push(next).is_ok();
                    prop_assert_eq!(pushed, in_flight < capacity,
                        "try_push must succeed iff the ring has room");
                    if pushed { next += 1; }
                }
                1 => {
                    let batch: Vec<u64> = (next..next + amount as u64).collect();
                    let n = p.push_batch(&batch);
                    prop_assert_eq!(n, amount.min(capacity - in_flight),
                        "push_batch must take exactly the free prefix");
                    next += n as u64;
                }
                2 => {
                    let v = c.pop();
                    prop_assert_eq!(v, (in_flight > 0).then_some(expect));
                    if v.is_some() { expect += 1; }
                }
                _ => {
                    out.clear();
                    let n = c.drain_into(&mut out, amount);
                    prop_assert_eq!(n, amount.min(in_flight),
                        "drain_into must take min(max, available)");
                    for &v in &out {
                        prop_assert_eq!(v, expect, "FIFO order violated");
                        expect += 1;
                    }
                }
            }
        }
        // Drain the remainder: nothing lost.
        out.clear();
        c.drain_into(&mut out, usize::MAX);
        for &v in &out {
            prop_assert_eq!(v, expect);
            expect += 1;
        }
        prop_assert_eq!(expect, next, "items lost in the ring");
    }

    /// Cross-thread stream integrity: a producer thread mixing batch and
    /// single pushes, a consumer mixing pops and bounded drains — the
    /// consumer sees exactly 0..n in order, for rings small enough to
    /// wrap thousands of times.
    #[test]
    fn spsc_batched_cross_thread(
        capacity in 1usize..17,
        total in 1u64..3000,
        chunk in 1usize..9,
        drain_max in 1usize..9
    ) {
        let (mut p, mut c) = spsc::channel::<u64>(capacity);
        let producer = std::thread::spawn(move || {
            let mut nextv = 0u64;
            while nextv < total {
                let hi = (nextv + chunk as u64).min(total);
                let batch: Vec<u64> = (nextv..hi).collect();
                // Alternate transport flavours by chunk parity.
                if (nextv / chunk as u64).is_multiple_of(2) {
                    let mut sent = 0;
                    while sent < batch.len() {
                        let k = p.push_batch(&batch[sent..]);
                        if k == 0 { std::thread::yield_now(); }
                        sent += k;
                    }
                } else {
                    for &v in &batch {
                        let mut item = v;
                        while let Err(back) = p.try_push(item) {
                            item = back;
                            std::thread::yield_now();
                        }
                    }
                }
                nextv = hi;
            }
        });
        let mut expect = 0u64;
        let mut out = Vec::new();
        let mut use_pop = false;
        while expect < total {
            if use_pop {
                if let Some(v) = c.pop() {
                    prop_assert_eq!(v, expect);
                    expect += 1;
                } else {
                    std::thread::yield_now();
                }
            } else {
                out.clear();
                if c.drain_into(&mut out, drain_max) == 0 {
                    std::thread::yield_now();
                }
                for &v in &out {
                    prop_assert_eq!(v, expect, "cross-thread FIFO violated");
                    expect += 1;
                }
            }
            use_pop = !use_pop;
        }
        producer.join().unwrap();
        prop_assert!(c.is_empty());
    }

    /// Any sequence of primitive fields round-trips through a sealed
    /// snapshot container bit-exactly, with every byte accounted for.
    #[test]
    fn snap_fields_roundtrip_through_sealed_container(
        fields in proptest::collection::vec(arb_field(), 0..40)
    ) {
        let mut w = Writer::new();
        for f in &fields {
            write_field(&mut w, f);
        }
        let sealed = sk_snap::seal(&w.into_bytes());
        let payload = sk_snap::open(&sealed).unwrap();
        let mut r = Reader::new(payload);
        for f in &fields {
            prop_assert_eq!(read_field(&mut r, f).unwrap(), f.clone());
        }
        r.finish().unwrap();
        // Sealing is deterministic: the same payload seals identically.
        let mut w2 = Writer::new();
        for f in &fields {
            write_field(&mut w2, f);
        }
        prop_assert_eq!(sk_snap::seal(&w2.into_bytes()), sealed);
    }

    /// A single flipped byte anywhere in a sealed snapshot is always
    /// rejected with a clean error — never a panic, never silent
    /// acceptance of damaged state.
    #[test]
    fn snap_open_rejects_any_single_byte_flip(
        payload in proptest::collection::vec(any::<u8>(), 0..200),
        pos in any::<usize>(),
        flip in 1u8..=255
    ) {
        let sealed = sk_snap::seal(&payload);
        let mut bad = sealed.clone();
        let i = pos % bad.len(); // sealed containers are never empty

        bad[i] ^= flip;
        prop_assert!(sk_snap::open(&bad).is_err(), "flip at byte {i} accepted");
        // The pristine container still opens to the exact payload.
        prop_assert_eq!(sk_snap::open(&sealed).unwrap(), &payload[..]);
    }

    /// Truncating a sealed snapshot at any point is rejected cleanly, and
    /// a reader over arbitrary garbage errors (no panic) once the bytes
    /// run out.
    #[test]
    fn snap_truncation_and_garbage_fail_cleanly(
        payload in proptest::collection::vec(any::<u8>(), 0..200),
        cut in any::<usize>(),
        garbage in proptest::collection::vec(any::<u8>(), 0..64)
    ) {
        let sealed = sk_snap::seal(&payload);
        let short = &sealed[..cut % sealed.len()];
        prop_assert!(sk_snap::open(short).is_err(), "truncation to {} accepted", short.len());

        let mut r = Reader::new(&garbage);
        let mut bounded = 0u32;
        while r.get_str().is_ok() {
            bounded += 1;
            prop_assert!(bounded <= 64, "reader failed to terminate on garbage");
        }
        // Over-draining past the end is an EOF error, not a panic.
        let eof = matches!(
            Reader::new(&garbage).take(garbage.len() + 1),
            Err(SnapError::UnexpectedEof { .. })
        );
        prop_assert!(eof, "take past the end must report EOF");
    }
}

// Deep-fuzz variants: the same properties under a much larger case and
// sequence budget. Too slow for the default debug-mode test pass; CI
// runs them in its dedicated `--ignored` job.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(2000))]

    /// Deep version of `batched_clock_ops_stay_monotone_and_cache_agrees`:
    /// 2000 cases of up to 2000 ops each.
    #[test]
    #[ignore = "deep fuzz; run in CI's --ignored pass"]
    fn deep_batched_clock_ops_stay_monotone_and_cache_agrees(
        ops in proptest::collection::vec((0u8..5, 0usize..4, 1u64..80), 1..2000)
    ) {
        check_batched_clock_ops(ops)?;
    }
}
