//! Telemetry-layer integration tests: cycle-neutrality of the hub,
//! non-empty histograms under a slack scheme, and counter persistence
//! through snapshot/restore.

use sk_core::engine::{Engine, RunOutcome};
use sk_core::{CoreModel, Scheme, TargetConfig};
use sk_isa::{Program, ProgramBuilder, Reg, Syscall};
use sk_obs::{Metrics, ObsConfig};
use std::sync::Arc;

/// Lock-serialized shared counter (the canonical deterministic workload:
/// same shape as the snapshot tests').
fn counter_workload(n: usize, iters: i64) -> Program {
    let a0 = Reg::arg(0);
    let a1 = Reg::arg(1);
    let mut b = ProgramBuilder::new();
    let counter = b.zeros("counter", 1);

    let worker = b.new_label("worker");
    let main = b.here("main");
    b.li(a0, 0);
    b.sys(Syscall::InitLock);
    b.li(a0, 1);
    b.li(a1, n as i64);
    b.sys(Syscall::InitBarrier);
    for _ in 1..n {
        b.la_text(a0, worker);
        b.li(a1, 0);
        b.sys(Syscall::Spawn);
    }
    b.sys(Syscall::RoiBegin);
    b.j(worker);

    b.bind(worker);
    let t_iter = Reg::saved(0);
    let t_addr = Reg::saved(1);
    let t_val = Reg::tmp(1);
    let t_inc = Reg::saved(2);
    b.li(t_iter, iters);
    b.li(t_addr, counter as i64);
    b.sys(Syscall::GetTid);
    b.addi(t_inc, a0, 1);
    let loop_top = b.here("loop");
    b.li(a0, 0);
    b.sys(Syscall::Lock);
    b.ld(t_val, t_addr, 0);
    b.add(t_val, t_val, t_inc);
    b.st(t_val, t_addr, 0);
    b.li(a0, 0);
    b.sys(Syscall::Unlock);
    b.addi(t_iter, t_iter, -1);
    b.bne(t_iter, Reg::ZERO, loop_top);
    b.li(a0, 1);
    b.sys(Syscall::Barrier);
    let done = b.new_label("done");
    b.sys(Syscall::GetTid);
    b.bne(a0, Reg::ZERO, done);
    b.ld(a0, t_addr, 0);
    b.sys(Syscall::PrintInt);
    b.bind(done);
    b.sys(Syscall::Exit);

    b.entry(main);
    b.build().unwrap()
}

fn cfg(n: usize) -> TargetConfig {
    let mut cfg = TargetConfig::paper_8core();
    cfg.n_cores = n;
    cfg.core.model = CoreModel::InOrder;
    cfg
}

fn run_with_obs(
    program: &Program,
    scheme: Scheme,
    cfg: &TargetConfig,
) -> (sk_core::SimReport, Arc<Metrics>) {
    let mut e = Engine::new(program, scheme, cfg);
    let obs = e.attach_new_metrics(ObsConfig::default());
    e.run_until(None);
    (e.into_report(), obs)
}

/// Attaching a hub must not change a single simulated cycle: telemetry
/// reads host clocks, never target state. CC is bit-deterministic, so any
/// divergence is an instrumentation bug.
#[test]
fn metrics_hub_is_cycle_neutral() {
    let program = counter_workload(4, 30);
    let c = cfg(4);
    let mut plain = Engine::new(&program, Scheme::CycleByCycle, &c);
    plain.run_until(None);
    let a = plain.into_report();
    let (b, _) = run_with_obs(&program, Scheme::CycleByCycle, &c);
    assert_eq!(a.exec_cycles, b.exec_cycles, "telemetry changed simulated time");
    assert_eq!(a.printed(), b.printed());
    assert_eq!(
        a.cores.iter().map(|s| s.cycles).collect::<Vec<_>>(),
        b.cores.iter().map(|s| s.cycles).collect::<Vec<_>>()
    );
}

/// Under a bounded-slack scheme the interesting histograms fill up: slack
/// observed at event-process time, park durations, manager drains.
#[test]
fn histograms_fill_under_bounded_slack() {
    let (r, obs) = run_with_obs(&counter_workload(4, 40), Scheme::BoundedSlack(10), &cfg(4));
    assert_eq!(r.printed().len(), 1);
    let slack_samples: u64 = obs.cores.iter().map(|c| c.slack.count()).sum();
    assert!(slack_samples > 0, "no slack samples recorded");
    let max_slack = obs.cores.iter().filter_map(|c| c.slack.max()).max().unwrap();
    assert!(max_slack <= 10, "slack {max_slack} exceeds the S10 bound");
    let parks: u64 = obs
        .cores
        .iter()
        .map(|c| c.park_ns.count() + c.sync_park_ns.count() + c.mem_park_ns.count())
        .sum();
    assert!(parks > 0, "no park samples recorded");
    assert!(obs.manager.iterations.get() > 0);
    assert!(obs.manager.events_ingested.get() > 0);
    assert!(obs.manager.drain_batch.count() > 0);
    assert!(!obs.trace.is_empty(), "no trace spans recorded");
    // PR-4 hot-path telemetry: the µTLB sees every functional access
    // (the workload touches memory, so hits+misses must be nonzero) and
    // every core records at least one run-ahead batch; S10 batches are
    // capped by the slack bound.
    let utlb: u64 = obs.cores.iter().map(|c| c.utlb_hits.get() + c.utlb_misses.get()).sum();
    assert!(utlb > 0, "no µTLB accesses recorded");
    let batches: u64 = obs.cores.iter().map(|c| c.run_batch.count()).sum();
    assert!(batches > 0, "no run-ahead batches recorded");
    let max_batch = obs.cores.iter().filter_map(|c| c.run_batch.max()).max().unwrap();
    assert!(max_batch <= 10, "batch {max_batch} exceeds the S10 cap");
    let json = obs.to_json();
    assert!(json.contains("\"schema\":\"sk-obs-metrics\""));
    assert!(json.contains("\"utlb_hits\""));
    assert!(json.contains("\"run_batch\""));
}

/// Counters survive the snapshot → resume path: the restored engine
/// carries the hub, its pre-snapshot counts, and keeps recording.
#[test]
fn snapshot_carries_counters_through_restore() {
    let program = counter_workload(2, 40);
    let c = cfg(2);
    let mut e = Engine::new(&program, Scheme::CycleByCycle, &c);
    e.attach_new_metrics(ObsConfig::default());
    assert_eq!(e.run_until(Some(400)), RunOutcome::CheckpointReady);
    let pre_cycles: u64 = e.metrics().unwrap().cores.iter().map(|co| co.cycles.get()).sum();
    let pre_ingested = e.metrics().unwrap().manager.events_ingested.get();
    assert!(pre_cycles > 0, "no core iterations before the checkpoint");
    let bytes = e.snapshot().unwrap();

    let mut restored = Engine::resume(&bytes, None).unwrap();
    let hub = restored.metrics().expect("snapshot carried no metrics hub").clone();
    assert_eq!(hub.n_cores(), 2);
    assert_eq!(
        hub.cores.iter().map(|co| co.cycles.get()).sum::<u64>(),
        pre_cycles,
        "restored hub lost core-cycle counters"
    );
    assert_eq!(hub.manager.events_ingested.get(), pre_ingested);
    // The restored trace sink starts empty (host timelines don't splice).
    assert!(hub.trace.is_empty());

    restored.run_until(None);
    let r = restored.into_report();
    assert_eq!(r.printed().len(), 1);
    assert!(
        hub.cores.iter().map(|co| co.cycles.get()).sum::<u64>() > pre_cycles,
        "restored hub stopped recording"
    );
    assert!(!hub.trace.is_empty(), "restored engine recorded no trace spans");
}

/// Without a hub the snapshot encodes exactly one extra `false` byte and
/// resumes hub-less.
#[test]
fn snapshot_without_hub_restores_hubless() {
    let program = counter_workload(2, 40);
    let c = cfg(2);
    let mut e = Engine::new(&program, Scheme::CycleByCycle, &c);
    assert_eq!(e.run_until(Some(400)), RunOutcome::CheckpointReady);
    let bytes = e.snapshot().unwrap();
    let restored = Engine::resume(&bytes, None).unwrap();
    assert!(restored.metrics().is_none());
}
