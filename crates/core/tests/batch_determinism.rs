//! Run-ahead batching must be invisible: forcing the per-core batch cap
//! to its maximum must produce bit-identical results to publishing the
//! local clock every cycle, for every conservative scheme.
//!
//! The batch budget is always clamped to the scheme window
//! (`max_local − local`), so a large cap can only amortize *publication*
//! of cycles the core was already allowed to simulate — never let it run
//! past the window. These tests pin that property on a lock-serialized
//! kernel where any reordering of inter-core events would change the
//! printed total or the cycle count.

use sk_core::{CoreModel, Engine, Scheme, SimReport, TargetConfig};
use sk_isa::{Program, ProgramBuilder, Reg, Syscall};

/// `n` threads each add a tid-distinct contribution to a lock-protected
/// counter, meet at a barrier, and thread 0 prints the total. Every
/// iteration serializes on the lock, so cross-core event timing is
/// load-bearing for the result.
fn serialized_kernel(n: usize, iters: i64) -> Program {
    let a0 = Reg::arg(0);
    let a1 = Reg::arg(1);
    let mut b = ProgramBuilder::new();
    let counter = b.zeros("counter", 1);

    let worker = b.new_label("worker");
    let main = b.here("main");
    b.li(a0, 0);
    b.sys(Syscall::InitLock);
    b.li(a0, 1);
    b.li(a1, n as i64);
    b.sys(Syscall::InitBarrier);
    for _ in 1..n {
        b.la_text(a0, worker);
        b.li(a1, 0);
        b.sys(Syscall::Spawn);
    }
    b.sys(Syscall::RoiBegin);
    b.j(worker);

    b.bind(worker);
    let t_iter = Reg::saved(0);
    let t_addr = Reg::saved(1);
    let t_val = Reg::tmp(1);
    let t_inc = Reg::saved(2);
    b.li(t_iter, iters);
    b.li(t_addr, counter as i64);
    b.sys(Syscall::GetTid);
    b.addi(t_inc, a0, 1);
    let loop_top = b.here("loop");
    b.li(a0, 0);
    b.sys(Syscall::Lock);
    b.ld(t_val, t_addr, 0);
    b.add(t_val, t_val, t_inc);
    b.st(t_val, t_addr, 0);
    b.li(a0, 0);
    b.sys(Syscall::Unlock);
    b.addi(t_iter, t_iter, -1);
    b.bne(t_iter, Reg::ZERO, loop_top);
    b.li(a0, 1);
    b.sys(Syscall::Barrier);
    let done = b.new_label("done");
    b.sys(Syscall::GetTid);
    b.bne(a0, Reg::ZERO, done);
    b.ld(a0, t_addr, 0);
    b.sys(Syscall::PrintInt);
    b.bind(done);
    b.sys(Syscall::Exit);

    b.entry(main);
    b.build().unwrap()
}

fn run_with_cap(p: &Program, scheme: Scheme, cfg: &TargetConfig, cap: u64) -> SimReport {
    let mut engine = Engine::new(p, scheme, cfg);
    engine.set_batch_cap(cap);
    engine.run_until(None);
    engine.into_report()
}

fn assert_identical(a: &SimReport, b: &SimReport, what: &str) {
    assert_eq!(a.printed(), b.printed(), "{what}: printed output diverged");
    assert_eq!(a.exec_cycles, b.exec_cycles, "{what}: exec_cycles diverged");
    assert_eq!(a.cores.len(), b.cores.len());
    for (c, (ca, cb)) in a.cores.iter().zip(&b.cores).enumerate() {
        assert_eq!(ca.committed, cb.committed, "{what}: core {c} committed diverged");
        assert_eq!(ca.fetched, cb.fetched, "{what}: core {c} fetched diverged");
    }
    assert_eq!(a.dir.gets, b.dir.gets, "{what}: directory GetS count diverged");
    assert_eq!(a.dir.getm, b.dir.getm, "{what}: directory GetM count diverged");
    assert_eq!(
        a.dir.invalidations_out, b.dir.invalidations_out,
        "{what}: invalidation count diverged"
    );
}

#[test]
fn cc_is_bit_identical_with_forced_batch_cap() {
    let n = 4;
    let p = serialized_kernel(n, 6);
    let mut cfg = TargetConfig::small(n);
    cfg.core.model = CoreModel::InOrder;
    cfg.max_cycles = 5_000_000;

    let one = run_with_cap(&p, Scheme::CycleByCycle, &cfg, 1);
    let big = run_with_cap(&p, Scheme::CycleByCycle, &cfg, 64);
    assert_identical(&one, &big, "CC cap 1 vs 64");
    assert_eq!(one.printed(), vec![(0, (1..=n as i64).sum::<i64>() * 6)]);
}

#[test]
fn ordered_bounded_slack_is_bit_identical_with_forced_batch_cap() {
    let n = 4;
    let p = serialized_kernel(n, 6);
    let mut cfg = TargetConfig::small(n);
    cfg.core.model = CoreModel::InOrder;
    cfg.max_cycles = 5_000_000;

    let scheme = Scheme::OldestFirstBounded(10);
    let one = run_with_cap(&p, scheme, &cfg, 1);
    let big = run_with_cap(&p, scheme, &cfg, 64);
    assert_identical(&one, &big, "S10-ordered cap 1 vs 64");
}
