//! Checkpoint / restore / fork-from-snapshot tests.
//!
//! The determinism claims mirror the repo's slack-scheme guarantees:
//! conservative schemes (CC) are bit-deterministic on every workload;
//! BoundedSlack is bit-deterministic on structurally serialized workloads
//! (token-ring relay, lock-serialized counter), which is exactly what the
//! checkpointed Fig. 6 grid workflow relies on. For those pairs a run that
//! is checkpointed at its midpoint, serialized, restored and finished must
//! be bit-identical to an uninterrupted run.

use sk_core::engine::{Engine, RunOutcome};
use sk_core::{run_parallel, CoreModel, Scheme, SimReport, TargetConfig};
use sk_isa::{Program, ProgramBuilder, Reg, Syscall};
use sk_snap::SnapError;

/// Lock-serialized shared counter: `n` threads each add `tid+1` to a
/// lock-protected counter `iters` times, meet at a barrier, thread 0
/// prints the total (same shape as the engine tests' canonical workload).
fn counter_workload(n: usize, iters: i64) -> Program {
    let a0 = Reg::arg(0);
    let a1 = Reg::arg(1);
    let mut b = ProgramBuilder::new();
    let counter = b.zeros("counter", 1);

    let worker = b.new_label("worker");
    let main = b.here("main");
    b.li(a0, 0);
    b.sys(Syscall::InitLock);
    b.li(a0, 1);
    b.li(a1, n as i64);
    b.sys(Syscall::InitBarrier);
    for _ in 1..n {
        b.la_text(a0, worker);
        b.li(a1, 0);
        b.sys(Syscall::Spawn);
    }
    b.sys(Syscall::RoiBegin);
    b.j(worker);

    b.bind(worker);
    let t_iter = Reg::saved(0);
    let t_addr = Reg::saved(1);
    let t_val = Reg::tmp(1);
    let t_inc = Reg::saved(2);
    b.li(t_iter, iters);
    b.li(t_addr, counter as i64);
    b.sys(Syscall::GetTid);
    b.addi(t_inc, a0, 1);
    let loop_top = b.here("loop");
    b.li(a0, 0);
    b.sys(Syscall::Lock);
    b.ld(t_val, t_addr, 0);
    b.add(t_val, t_val, t_inc);
    b.st(t_val, t_addr, 0);
    b.li(a0, 0);
    b.sys(Syscall::Unlock);
    b.addi(t_iter, t_iter, -1);
    b.bne(t_iter, Reg::ZERO, loop_top);
    b.li(a0, 1);
    b.sys(Syscall::Barrier);
    let done = b.new_label("done");
    b.sys(Syscall::GetTid);
    b.bne(a0, Reg::ZERO, done);
    b.ld(a0, t_addr, 0);
    b.sys(Syscall::PrintInt);
    b.bind(done);
    b.sys(Syscall::Exit);

    b.entry(main);
    b.build().unwrap()
}

/// Semaphore token ring: thread `t` waits on semaphore `t`, adds `t+1` to
/// a shared counter (safe without a lock — only the token holder runs),
/// signals semaphore `(t+1) % n`, `rounds` times. The last thread's last
/// wait is globally last, so it prints the completed total. Execution is
/// fully serialized by the token, making every scheme deterministic.
fn token_ring_workload(n: usize, rounds: i64) -> Program {
    let a0 = Reg::arg(0);
    let a1 = Reg::arg(1);
    let mut b = ProgramBuilder::new();
    let counter = b.zeros("counter", 1);

    let worker = b.new_label("worker");
    let main = b.here("main");
    for i in 0..n {
        b.li(a0, i as i64);
        b.li(a1, i64::from(i == 0)); // thread 0 starts with the token
        b.sys(Syscall::InitSema);
    }
    for _ in 1..n {
        b.la_text(a0, worker);
        b.li(a1, 0);
        b.sys(Syscall::Spawn);
    }
    b.sys(Syscall::RoiBegin);
    b.j(worker);

    b.bind(worker);
    let my_sema = Reg::saved(0);
    let next_sema = Reg::saved(1);
    let iter = Reg::saved(2);
    let inc = Reg::saved(3);
    let addr = Reg::saved(4);
    let val = Reg::tmp(1);
    b.sys(Syscall::GetTid);
    b.mv(my_sema, a0);
    b.addi(inc, a0, 1);
    b.addi(next_sema, a0, 1);
    b.li(Reg::tmp(0), n as i64);
    let wrap_done = b.new_label("wrap_done");
    b.bne(next_sema, Reg::tmp(0), wrap_done);
    b.li(next_sema, 0);
    b.bind(wrap_done);
    b.li(iter, rounds);
    b.li(addr, counter as i64);
    let loop_top = b.here("loop");
    b.mv(a0, my_sema);
    b.sys(Syscall::SemaWait);
    b.ld(val, addr, 0);
    b.add(val, val, inc);
    b.st(val, addr, 0);
    b.mv(a0, next_sema);
    b.sys(Syscall::SemaSignal);
    b.addi(iter, iter, -1);
    b.bne(iter, Reg::ZERO, loop_top);
    // The last thread's final token grab is the globally last increment.
    let done = b.new_label("done");
    b.li(Reg::tmp(0), n as i64 - 1);
    b.bne(my_sema, Reg::tmp(0), done);
    b.ld(a0, addr, 0);
    b.sys(Syscall::PrintInt);
    b.bind(done);
    b.sys(Syscall::Exit);

    b.entry(main);
    b.build().unwrap()
}

/// Two-thread semaphore ping-pong with private compute between handoffs.
/// Strictly alternating (only the token holder ever runs), so every
/// scheme — bounded slack included — is bit-deterministic on it.
fn pingpong_workload(rounds: i64) -> Program {
    let a0 = Reg::arg(0);
    let a1 = Reg::arg(1);
    let mut b = ProgramBuilder::new();
    let slot = b.zeros("slot", 1);
    let scratch = b.zeros("scratch", 8);
    let peer = b.new_label("peer");
    let main = b.here("main");
    b.li(a0, 0);
    b.li(a1, 1); // thread 0 serves first
    b.sys(Syscall::InitSema);
    b.li(a0, 1);
    b.li(a1, 0);
    b.sys(Syscall::InitSema);
    b.la_text(a0, peer);
    b.li(a1, 0);
    b.sys(Syscall::Spawn);
    b.sys(Syscall::RoiBegin);
    b.j(peer);
    b.bind(peer);
    let my = Reg::saved(0);
    let other = Reg::saved(1);
    let iter = Reg::saved(2);
    let addr = Reg::saved(3);
    let scr = Reg::saved(4);
    let val = Reg::tmp(1);
    b.sys(Syscall::GetTid);
    b.mv(my, a0);
    b.li(other, 1);
    b.sub(other, other, my);
    b.li(iter, rounds);
    b.li(addr, slot as i64);
    b.li(scr, scratch as i64);
    let loop_top = b.here("loop");
    b.mv(a0, my);
    b.sys(Syscall::SemaWait);
    for k in 0..6 {
        b.ld(val, scr, k * 8);
        b.addi(val, val, 3);
        b.st(val, scr, k * 8);
    }
    b.ld(val, addr, 0);
    b.addi(val, val, 1);
    b.st(val, addr, 0);
    b.mv(a0, other);
    b.sys(Syscall::SemaSignal);
    b.addi(iter, iter, -1);
    b.bne(iter, Reg::ZERO, loop_top);
    let done = b.new_label("done");
    b.li(Reg::tmp(0), 1);
    b.bne(my, Reg::tmp(0), done);
    b.ld(a0, addr, 0);
    b.sys(Syscall::PrintInt);
    b.bind(done);
    b.sys(Syscall::Exit);
    b.entry(main);
    b.build().unwrap()
}

fn small_cfg(n: usize) -> TargetConfig {
    let mut cfg = TargetConfig::small(n);
    cfg.core.model = CoreModel::InOrder;
    cfg.max_cycles = 5_000_000;
    cfg.track_workload_violations = true;
    cfg
}

/// The bit-determinism contract: committed instructions, cycle counts,
/// printed output and violation counters all agree. Directory counters are
/// additionally exact for conservative schemes; under bounded slack the
/// coherence-traffic mix (an L1 refetch more or less) is host-timing
/// dependent even between two uninterrupted runs, while simulated time and
/// committed work are not.
fn assert_bit_identical(a: &SimReport, b: &SimReport, conservative: bool, what: &str) {
    assert_eq!(a.printed(), b.printed(), "{what}: printed output");
    assert_eq!(a.exec_cycles, b.exec_cycles, "{what}: exec cycles");
    assert_eq!(a.violations, b.violations, "{what}: violation counters");
    if conservative {
        assert_eq!(a.dir, b.dir, "{what}: directory counters");
    }
    for (c, (ca, cb)) in a.cores.iter().zip(&b.cores).enumerate() {
        assert_eq!(ca.committed, cb.committed, "{what}: core {c} committed");
        assert_eq!(ca.roi_committed, cb.roi_committed, "{what}: core {c} roi committed");
        assert_eq!(ca.cycles, cb.cycles, "{what}: core {c} cycles");
        assert_eq!(ca.loads, cb.loads, "{what}: core {c} loads");
        assert_eq!(ca.stores, cb.stores, "{what}: core {c} stores");
    }
}

/// Run to the safe-point at `at`, snapshot, restore from the bytes in a
/// fresh engine, finish, and return (snapshot bytes, final report).
fn checkpointed_run(
    p: &Program,
    scheme: Scheme,
    cfg: &TargetConfig,
    at: u64,
) -> (Vec<u8>, SimReport) {
    let mut e = Engine::new(p, scheme, cfg);
    let outcome = e.run_until(Some(at));
    assert_eq!(outcome, RunOutcome::CheckpointReady, "safe-point at cycle {at} not reached");
    assert_eq!(e.global(), at, "global time parked off the safe-point");
    let bytes = e.snapshot().expect("snapshot at safe-point");
    drop(e);
    let mut r = Engine::resume(&bytes, None).expect("resume");
    assert_eq!(r.run_until(None), RunOutcome::Finished);
    (bytes, r.into_report())
}

fn full_cycles(r: &SimReport) -> u64 {
    r.cores.iter().map(|c| c.cycles).max().unwrap_or(0)
}

#[test]
fn checkpoint_restore_is_bit_deterministic_cc_and_s10() {
    let s10 = [Scheme::CycleByCycle, Scheme::BoundedSlack(10)];
    // The counter workload is lock-serialized, not structurally
    // serialized: under bounded slack the spin-retry timing is
    // slack-dependent, so even two uninterrupted S10 runs differ by a few
    // cycles. It stays in the matrix as CC-only coverage of the
    // lock/barrier restore paths.
    let cc_only = [Scheme::CycleByCycle];
    let cases: [(&str, Program, usize, &[Scheme]); 3] = [
        ("token_ring", token_ring_workload(4, 6), 4, &s10),
        ("pingpong", pingpong_workload(8), 2, &s10),
        ("counter", counter_workload(4, 5), 4, &cc_only),
    ];
    for (name, p, n, schemes) in &cases {
        let cfg = small_cfg(*n);
        for &scheme in *schemes {
            let full = run_parallel(p, scheme, &cfg);
            let mid = full_cycles(&full) / 2;
            assert!(mid > 0, "{name}: degenerate run");
            let (_, resumed) = checkpointed_run(p, scheme, &cfg, mid);
            assert_bit_identical(
                &full,
                &resumed,
                scheme.is_conservative(),
                &format!("{name}/{scheme}"),
            );
        }
    }
}

#[test]
fn early_and_late_checkpoints_work() {
    let p = counter_workload(4, 5);
    let cfg = small_cfg(4);
    let full = run_parallel(&p, Scheme::CycleByCycle, &cfg);
    let end = full_cycles(&full);
    // Cycle 1: before any thread has done real work. Late: deep into the
    // barrier epilogue.
    for at in [1, end.saturating_sub(20)] {
        let (_, resumed) = checkpointed_run(&p, Scheme::CycleByCycle, &cfg, at);
        assert_bit_identical(&full, &resumed, true, &format!("checkpoint at {at}"));
    }
}

#[test]
fn engine_continues_in_process_after_snapshot() {
    // The --checkpoint-at flow: snapshot mid-run, then keep driving the
    // SAME engine to completion. Must equal the uninterrupted run.
    let p = token_ring_workload(4, 6);
    let cfg = small_cfg(4);
    let full = run_parallel(&p, Scheme::BoundedSlack(10), &cfg);
    let mid = full_cycles(&full) / 2;

    let mut e = Engine::new(&p, Scheme::BoundedSlack(10), &cfg);
    assert_eq!(e.run_until(Some(mid)), RunOutcome::CheckpointReady);
    let bytes = e.snapshot().expect("snapshot");
    assert_eq!(e.run_until(None), RunOutcome::Finished);
    let cont = e.into_report();
    assert_bit_identical(&full, &cont, false, "continue-after-snapshot");

    // And the serialized sibling agrees with both.
    let mut r = Engine::resume(&bytes, None).expect("resume");
    assert_eq!(r.run_until(None), RunOutcome::Finished);
    assert_bit_identical(&full, &r.into_report(), false, "resumed sibling");
}

#[test]
fn snapshot_roundtrips_byte_identically() {
    // resume(snapshot(e)) reconstructs the exact state: snapshotting the
    // restored engine reproduces the same bytes.
    let p = counter_workload(4, 5);
    let cfg = small_cfg(4);
    let full = run_parallel(&p, Scheme::CycleByCycle, &cfg);
    let mid = full_cycles(&full) / 2;
    let mut e = Engine::new(&p, Scheme::CycleByCycle, &cfg);
    assert_eq!(e.run_until(Some(mid)), RunOutcome::CheckpointReady);
    let bytes = e.snapshot().expect("snapshot");
    let mut r = Engine::resume(&bytes, None).expect("resume");
    let bytes2 = r.snapshot().expect("re-snapshot");
    assert_eq!(bytes, bytes2, "snapshot/resume round-trip drifted");
}

#[test]
fn sharded_snapshot_at_64_cores_roundtrips_byte_identically() {
    // The v6 format carries per-shard state (frontier, applied grant,
    // directory shard). At a safe-point with mem_shards=4 on a 64-core
    // target: save → restore → re-snapshot must be byte-identical, and
    // the restored run must finish bit-identically to an uninterrupted
    // sharded run (which itself matches single-manager CC).
    let p = counter_workload(64, 1);
    let mut cfg = TargetConfig::many_core(64);
    cfg.core.model = CoreModel::InOrder;
    cfg.max_cycles = 20_000_000;
    cfg.track_workload_violations = true;
    cfg.mem_shards = 4;
    let full = run_parallel(&p, Scheme::CycleByCycle, &cfg);
    let mid = full_cycles(&full) / 2;
    assert!(mid > 0, "degenerate 64-core run");

    let mut e = Engine::new(&p, Scheme::CycleByCycle, &cfg);
    assert_eq!(e.run_until(Some(mid)), RunOutcome::CheckpointReady, "sharded safe-point");
    let bytes = e.snapshot().expect("sharded snapshot");
    let mut r = Engine::resume(&bytes, None).expect("sharded resume");
    let bytes2 = r.snapshot().expect("sharded re-snapshot");
    assert_eq!(bytes, bytes2, "sharded snapshot/resume round-trip drifted");
    assert_eq!(r.run_until(None), RunOutcome::Finished);
    assert_bit_identical(&full, &r.into_report(), true, "sharded 64-core CC resume");
}

#[test]
fn adaptive_snapshot_mid_epoch_roundtrips_controller_state_bit_exactly() {
    // The closed-loop controller (budget 16 ⇒ 64-cycle epochs) carries
    // live mid-epoch state: counter marks, the epoch slack high-water,
    // the decision trajectory. A safe-point that does not land on an
    // epoch boundary must round-trip all of it byte for byte.
    let p = token_ring_workload(4, 6);
    let cfg = small_cfg(4);
    let adaptive = Scheme::Adaptive { budget: 16 };
    let full = run_parallel(&p, adaptive, &cfg);
    let mid = (full_cycles(&full) / 2) | 1; // odd ⇒ never an epoch boundary
    let mut e = Engine::new(&p, adaptive, &cfg);
    assert_eq!(e.run_until(Some(mid)), RunOutcome::CheckpointReady);
    let decisions = e.adapt_decisions().expect("adaptive engine");
    let traj = e.adapt_trajectory().unwrap().to_vec();
    assert!(decisions.0 > 0, "no control epoch elapsed before cycle {mid}");
    let bytes = e.snapshot().expect("snapshot");

    let mut r = Engine::resume(&bytes, None).expect("resume");
    assert_eq!(r.adapt_decisions(), Some(decisions), "controller decisions drifted");
    assert_eq!(r.adapt_trajectory().unwrap(), &traj[..], "trajectory drifted");
    let bytes2 = r.snapshot().expect("re-snapshot");
    assert_eq!(bytes, bytes2, "adaptive snapshot/resume round-trip drifted");

    // …and the resumed engine finishes the run correctly, continuing the
    // control loop rather than re-ramping from the initial window.
    assert_eq!(r.run_until(None), RunOutcome::Finished);
    let resumed = r.into_report();
    assert_eq!(resumed.printed(), full.printed(), "resumed adaptive run output");
    assert!(resumed.engine.adapt_epochs >= decisions.0);
}

#[test]
fn static_snapshot_forks_onto_adaptive() {
    // Fork-from-snapshot (the Fig. 6 grid workflow) must admit the
    // adaptive scheme like any other: a CC snapshot resumed under A16
    // starts a fresh controller and runs the loop from the fork point.
    let p = token_ring_workload(4, 6);
    let cfg = small_cfg(4);
    let full = run_parallel(&p, Scheme::CycleByCycle, &cfg);
    let mid = full_cycles(&full) / 2;
    let mut e = Engine::new(&p, Scheme::CycleByCycle, &cfg);
    assert_eq!(e.run_until(Some(mid)), RunOutcome::CheckpointReady);
    let bytes = e.snapshot().expect("snapshot");

    let mut f = Engine::resume(&bytes, Some(Scheme::Adaptive { budget: 16 })).expect("fork");
    assert_eq!(f.adapt_decisions(), Some((0, 8)), "fork must start a fresh controller");
    assert_eq!(f.run_until(None), RunOutcome::Finished);
    let r = f.into_report();
    assert_eq!(r.printed(), full.printed(), "forked adaptive run output");
    assert!(r.engine.adapt_epochs > 0, "the controller never ran after the fork");
    assert!(r.violations.max_inversion_cycles <= 16, "fork exceeded the adaptive budget");
}

#[test]
fn fork_from_snapshot_onto_other_schemes() {
    // gridfork's core operation: one snapshot, forked onto every scheme.
    // Conservative forks must agree bit-for-bit with from-scratch runs of
    // the same scheme only when the prefix scheme matches — so fork from a
    // CC snapshot back onto CC as the exactness check, and onto the rest
    // as a liveness + functional-correctness check.
    let p = token_ring_workload(4, 5);
    let cfg = small_cfg(4);
    let full = run_parallel(&p, Scheme::CycleByCycle, &cfg);
    let mid = full_cycles(&full) / 2;
    let mut e = Engine::new(&p, Scheme::CycleByCycle, &cfg);
    assert_eq!(e.run_until(Some(mid)), RunOutcome::CheckpointReady);
    let bytes = e.snapshot().expect("snapshot");

    for scheme in Scheme::paper_suite(cfg.critical_latency()) {
        let mut f = Engine::resume(&bytes, Some(scheme)).expect("fork");
        assert_eq!(f.scheme(), scheme);
        assert_eq!(f.run_until(None), RunOutcome::Finished);
        let r = f.into_report();
        assert_eq!(r.printed(), full.printed(), "fork onto {scheme} corrupted the workload");
        if scheme == Scheme::CycleByCycle {
            assert_bit_identical(&full, &r, true, "CC fork");
        }
    }
}

#[test]
fn corrupted_and_truncated_snapshots_fail_cleanly() {
    let p = counter_workload(2, 3);
    let cfg = small_cfg(2);
    let mut e = Engine::new(&p, Scheme::CycleByCycle, &cfg);
    assert_eq!(e.run_until(Some(50)), RunOutcome::CheckpointReady);
    let bytes = e.snapshot().expect("snapshot");

    // Flip one byte at a spread of positions: the checksum (or a layer
    // validation) must reject every damaged image without panicking.
    for pos in (0..bytes.len()).step_by(97) {
        let mut bad = bytes.clone();
        bad[pos] ^= 0x40;
        assert!(Engine::resume(&bad, None).is_err(), "byte flip at {pos} accepted");
    }
    // Truncations at every prefix length of the envelope and a sweep of
    // payload cuts.
    for len in 0..24.min(bytes.len()) {
        assert!(Engine::resume(&bytes[..len], None).is_err(), "truncation to {len} accepted");
    }
    for len in (24..bytes.len()).step_by(131) {
        assert!(Engine::resume(&bytes[..len], None).is_err(), "truncation to {len} accepted");
    }
    // Damaged magic and wrong version field.
    let mut wrong = bytes.clone();
    wrong[7] ^= 0xFF;
    match Engine::resume(&wrong, None).map(|_| ()) {
        Err(SnapError::BadMagic) => {}
        other => panic!("damaged magic must be rejected, got {other:?}"),
    }
    let mut wrong = bytes.clone();
    wrong[8] ^= 0xFF; // low byte of the little-endian version word
    match Engine::resume(&wrong, None).map(|_| ()) {
        Err(SnapError::BadVersion { .. }) => {}
        other => panic!("wrong-version snapshot must be rejected, got {other:?}"),
    }
    // Garbage and empty inputs.
    assert!(Engine::resume(&[], None).is_err());
    assert!(Engine::resume(b"not a snapshot at all", None).is_err());

    // The pristine bytes still restore fine after all that.
    assert!(Engine::resume(&bytes, None).is_ok());
}

#[test]
fn unsupported_configurations_are_rejected() {
    let p = counter_workload(2, 3);
    let mut cfg = small_cfg(2);
    cfg.record_trace = true;
    let mut e = Engine::new(&p, Scheme::CycleByCycle, &cfg);
    match e.snapshot() {
        Err(SnapError::Unsupported(_)) => {}
        other => panic!("trace-recording snapshot must be unsupported, got {other:?}"),
    }
}

/// Mid-run snapshot → resume → re-snapshot byte-identity on the irregular
/// kernel family. These kernels park cores inside manager-ordered waits
/// (semaphore queues, mailbox blocks, contended deque locks, in-flight
/// CAS replies), so the round-trip covers sync-manager state — including
/// the `SyncOp::Cas` persist path — that the data-parallel workloads
/// never exercise at a safe-point.
#[test]
fn irregular_kernels_snapshot_roundtrip_byte_identically() {
    for w in sk_kernels::irregular_suite(4, sk_kernels::Scale::Test) {
        let cfg = small_cfg(w.n_threads);
        let full = run_parallel(&w.program, Scheme::CycleByCycle, &cfg);
        let mid = full_cycles(&full) / 2;
        assert!(mid > 0, "{}: degenerate run", w.name);

        let mut e = Engine::new(&w.program, Scheme::CycleByCycle, &cfg);
        assert_eq!(
            e.run_until(Some(mid)),
            RunOutcome::CheckpointReady,
            "{}: no safe-point at cycle {mid}",
            w.name
        );
        let bytes = e.snapshot().unwrap_or_else(|e| panic!("{}: snapshot: {e}", w.name));
        drop(e);

        let mut r = Engine::resume(&bytes, None).expect("resume");
        let bytes2 = r.snapshot().expect("re-snapshot");
        assert_eq!(bytes, bytes2, "{}: snapshot/resume round-trip drifted", w.name);

        // The resumed half must finish the run bit-identically to the
        // uninterrupted one.
        assert_eq!(r.run_until(None), RunOutcome::Finished);
        let resumed = r.into_report();
        assert_eq!(
            resumed.fingerprint(),
            full.fingerprint(),
            "{}: resumed half diverged from the uninterrupted run",
            w.name
        );
    }
}
