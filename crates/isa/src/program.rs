//! Linked program images.
//!
//! A [`Program`] is the output of the assembler or the
//! [`crate::builder::ProgramBuilder`]: a text segment (instructions), a data
//! segment (initialized 64-bit words), an entry point and a symbol table.
//! The simulator loads it into functional memory with [`Program::image`].

use crate::encode::encode;
use crate::instr::Instr;
use crate::layout::{DATA_BASE, TEXT_BASE};
use crate::WORD_BYTES;
use std::collections::BTreeMap;
use std::fmt;

/// Error produced by [`Program::validate`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProgramError {
    /// A branch or jump at instruction index `.0` targets instruction index
    /// `.1`, which is outside the text segment.
    BranchOutOfRange(usize, i64),
    /// The entry point is not inside the text segment.
    BadEntry(u64),
}

impl fmt::Display for ProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProgramError::BranchOutOfRange(at, to) => {
                write!(f, "instruction {at} branches to out-of-range index {to}")
            }
            ProgramError::BadEntry(pc) => write!(f, "entry point {pc:#x} not in text segment"),
        }
    }
}

impl std::error::Error for ProgramError {}

/// A loadable program for the SlackSim mini ISA.
#[derive(Clone, Debug, Default)]
pub struct Program {
    /// Instructions, laid out from [`TEXT_BASE`], one per word.
    pub text: Vec<Instr>,
    /// Initialized data words, laid out from [`DATA_BASE`].
    pub data: Vec<u64>,
    /// Entry PC of the initial workload thread (thread 0).
    pub entry: u64,
    /// Label → byte address (text labels point into text, data labels into
    /// the data segment).
    pub symbols: BTreeMap<String, u64>,
}

impl Program {
    /// Number of instructions in the text segment.
    pub fn text_len(&self) -> usize {
        self.text.len()
    }

    /// Byte address of instruction index `i`.
    #[inline]
    pub fn text_addr(i: usize) -> u64 {
        TEXT_BASE + (i as u64) * WORD_BYTES
    }

    /// Instruction index of byte address `pc`, if `pc` is in this text
    /// segment.
    #[inline]
    pub fn text_index(&self, pc: u64) -> Option<usize> {
        if pc < TEXT_BASE || !pc.is_multiple_of(WORD_BYTES) {
            return None;
        }
        let i = ((pc - TEXT_BASE) / WORD_BYTES) as usize;
        (i < self.text.len()).then_some(i)
    }

    /// Look up a symbol's byte address.
    pub fn symbol(&self, name: &str) -> Option<u64> {
        self.symbols.get(name).copied()
    }

    /// The full memory image: `(byte address, word)` pairs for the encoded
    /// text followed by the data segment.
    pub fn image(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        let text = self.text.iter().enumerate().map(|(i, ins)| (Self::text_addr(i), encode(ins)));
        let data =
            self.data.iter().enumerate().map(|(i, w)| (DATA_BASE + (i as u64) * WORD_BYTES, *w));
        text.chain(data)
    }

    /// Check structural sanity: entry in range and all static control
    /// transfers landing inside the text segment.
    pub fn validate(&self) -> Result<(), ProgramError> {
        if self.text_index(self.entry).is_none() {
            return Err(ProgramError::BadEntry(self.entry));
        }
        for (i, ins) in self.text.iter().enumerate() {
            if let Some(off) = ins.rel_target() {
                // target = index of next instruction + offset
                let tgt = i as i64 + 1 + off as i64;
                if tgt < 0 || tgt as usize >= self.text.len() {
                    return Err(ProgramError::BranchOutOfRange(i, tgt));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::Reg;

    fn tiny() -> Program {
        Program {
            text: vec![
                Instr::Li { rd: Reg::arg(0), imm: 1 },
                Instr::Beq { rs1: Reg::ZERO, rs2: Reg::ZERO, off: -2 },
                Instr::Syscall { code: 0 },
            ],
            data: vec![1, 2, 3],
            entry: TEXT_BASE,
            symbols: BTreeMap::new(),
        }
    }

    #[test]
    fn addresses_round_trip() {
        let p = tiny();
        for i in 0..p.text_len() {
            assert_eq!(p.text_index(Program::text_addr(i)), Some(i));
        }
        assert_eq!(p.text_index(TEXT_BASE - 8), None);
        assert_eq!(p.text_index(TEXT_BASE + 8 * 100), None);
        assert_eq!(p.text_index(TEXT_BASE + 1), None);
    }

    #[test]
    fn image_covers_text_and_data() {
        let p = tiny();
        let img: Vec<_> = p.image().collect();
        assert_eq!(img.len(), 6);
        assert_eq!(img[0].0, TEXT_BASE);
        assert_eq!(img[3], (DATA_BASE, 1));
        assert_eq!(img[5], (DATA_BASE + 16, 3));
    }

    #[test]
    fn validate_accepts_in_range_branches() {
        assert_eq!(tiny().validate(), Ok(()));
    }

    #[test]
    fn validate_rejects_wild_branch() {
        let mut p = tiny();
        p.text[1] = Instr::J { off: 100 };
        assert!(matches!(p.validate(), Err(ProgramError::BranchOutOfRange(1, 102))));
        p.text[1] = Instr::J { off: -100 };
        assert!(matches!(p.validate(), Err(ProgramError::BranchOutOfRange(1, _))));
    }

    #[test]
    fn validate_rejects_bad_entry() {
        let mut p = tiny();
        p.entry = 0;
        assert!(matches!(p.validate(), Err(ProgramError::BadEntry(0))));
    }
}
