//! Text assembler.
//!
//! A small two-pass assembler accepting the syntax produced by
//! [`crate::disasm`], plus labels and data directives:
//!
//! ```text
//! .data
//! counter:            # labels name the next word/instruction
//!   .word 0
//! table:
//!   .float 1.0, 2.5
//!   .zero 8           # reserve 8 zeroed words
//!
//! .text
//! main:
//!   li   t0, 10
//! loop:
//!   addi t0, t0, -1
//!   bne  t0, zero, loop   # branches take labels or numeric offsets
//!   syscall 0             # exit
//! ```
//!
//! The entry point is the `main` label if present, else the first
//! instruction. Comments start with `#` or `//`.

use crate::instr::Instr;
use crate::program::Program;
use crate::reg::{FReg, Reg};
use std::collections::BTreeMap;
use std::fmt;

/// Assembly error with a 1-based source line number.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based line the error was detected on.
    pub line: usize,
    /// Human-readable description.
    pub msg: String,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for AsmError {}

fn err<T>(line: usize, msg: impl Into<String>) -> Result<T, AsmError> {
    Err(AsmError { line, msg: msg.into() })
}

#[derive(Clone, Copy, PartialEq)]
enum Section {
    Text,
    Data,
}

/// Split an operand list on commas, trimming whitespace.
fn operands(s: &str) -> Vec<&str> {
    s.split(',').map(str::trim).filter(|t| !t.is_empty()).collect()
}

fn strip_comment(line: &str) -> &str {
    let mut end = line.len();
    if let Some(i) = line.find('#') {
        end = end.min(i);
    }
    if let Some(i) = line.find("//") {
        end = end.min(i);
    }
    line[..end].trim()
}

struct Ctx<'a> {
    labels: &'a BTreeMap<String, (Section, usize)>,
    line: usize,
    index: usize, // index of the instruction being assembled
}

impl Ctx<'_> {
    fn reg(&self, t: &str) -> Result<Reg, AsmError> {
        Reg::parse(t)
            .ok_or_else(|| AsmError { line: self.line, msg: format!("bad integer register '{t}'") })
    }

    fn freg(&self, t: &str) -> Result<FReg, AsmError> {
        FReg::parse(t)
            .ok_or_else(|| AsmError { line: self.line, msg: format!("bad fp register '{t}'") })
    }

    fn imm(&self, t: &str) -> Result<i32, AsmError> {
        parse_int(t)
            .and_then(|v| i32::try_from(v).ok())
            .ok_or_else(|| AsmError { line: self.line, msg: format!("bad immediate '{t}'") })
    }

    /// An address-valued immediate: a numeric value or any label (text or
    /// data), resolved to its byte address. Used by `li`/`la`.
    fn addr_imm(&self, t: &str) -> Result<i32, AsmError> {
        if let Some(v) = parse_int(t) {
            return i32::try_from(v)
                .map_err(|_| AsmError { line: self.line, msg: format!("'{t}' overflows li") });
        }
        let addr = match self.labels.get(t) {
            Some((Section::Text, idx)) => Program::text_addr(*idx),
            Some((Section::Data, idx)) => {
                crate::layout::DATA_BASE + (*idx as u64) * crate::WORD_BYTES
            }
            None => return err(self.line, format!("unknown label '{t}'")),
        };
        i32::try_from(addr).map_err(|_| AsmError {
            line: self.line,
            msg: format!("address of '{t}' overflows li"),
        })
    }

    /// A branch target: either a numeric offset or a text label.
    fn target(&self, t: &str) -> Result<i32, AsmError> {
        if let Some(v) = parse_int(t) {
            return i32::try_from(v)
                .map_err(|_| AsmError { line: self.line, msg: format!("offset '{t}' overflow") });
        }
        match self.labels.get(t) {
            Some((Section::Text, idx)) => {
                let off = *idx as i64 - (self.index as i64 + 1);
                i32::try_from(off).map_err(|_| AsmError {
                    line: self.line,
                    msg: format!("branch to '{t}' out of range"),
                })
            }
            Some((Section::Data, _)) => err(self.line, format!("'{t}' is a data label")),
            None => err(self.line, format!("unknown label '{t}'")),
        }
    }

    /// A `imm(base)` memory operand.
    fn mem(&self, t: &str) -> Result<(i32, Reg), AsmError> {
        let open = t.find('(').ok_or_else(|| AsmError {
            line: self.line,
            msg: format!("bad memory operand '{t}'"),
        })?;
        if !t.ends_with(')') {
            return err(self.line, format!("bad memory operand '{t}'"));
        }
        let off_txt = t[..open].trim();
        let off = if off_txt.is_empty() { 0 } else { self.imm(off_txt)? };
        let base = self.reg(t[open + 1..t.len() - 1].trim())?;
        Ok((off, base))
    }
}

fn parse_int(t: &str) -> Option<i64> {
    let (neg, rest) = match t.strip_prefix('-') {
        Some(r) => (true, r),
        None => (false, t),
    };
    let v = if let Some(hex) = rest.strip_prefix("0x").or_else(|| rest.strip_prefix("0X")) {
        i64::from_str_radix(hex, 16).ok()?
    } else {
        rest.parse::<i64>().ok()?
    };
    Some(if neg { -v } else { v })
}

fn parse_data_word(t: &str, line: usize) -> Result<u64, AsmError> {
    // Data words cover the full u64 range (hex) as well as negative
    // two's-complement decimals.
    if let Some(hex) = t.strip_prefix("0x").or_else(|| t.strip_prefix("0X")) {
        if let Ok(v) = u64::from_str_radix(hex, 16) {
            return Ok(v);
        }
    } else if let Some(v) = parse_int(t) {
        return Ok(v as u64);
    }
    err(line, format!("bad data word '{t}'"))
}

/// Assemble a source listing into a [`Program`].
pub fn assemble(src: &str) -> Result<Program, AsmError> {
    // Pass 1: count instructions / data words, bind labels.
    let mut labels: BTreeMap<String, (Section, usize)> = BTreeMap::new();
    let mut section = Section::Text;
    let mut n_instr = 0usize;
    let mut n_data = 0usize;

    for (ln, raw) in src.lines().enumerate() {
        let line_no = ln + 1;
        let mut line = strip_comment(raw);
        while let Some(colon) = line.find(':') {
            let (label, rest) = line.split_at(colon);
            let label = label.trim();
            if label.is_empty() || label.contains(char::is_whitespace) {
                break; // not a label, e.g. nothing sensible — let pass 2 report
            }
            let pos = match section {
                Section::Text => n_instr,
                Section::Data => n_data,
            };
            if labels.insert(label.to_string(), (section, pos)).is_some() {
                return err(line_no, format!("duplicate label '{label}'"));
            }
            line = rest[1..].trim();
        }
        if line.is_empty() {
            continue;
        }
        if let Some(dir) = line.strip_prefix('.') {
            let (name, rest) = dir.split_once(char::is_whitespace).unwrap_or((dir, ""));
            match name {
                "text" => section = Section::Text,
                "data" => section = Section::Data,
                "word" | "float" => {
                    if section != Section::Data {
                        return err(line_no, format!(".{name} outside .data"));
                    }
                    n_data += operands(rest).len();
                }
                "zero" => {
                    if section != Section::Data {
                        return err(line_no, ".zero outside .data");
                    }
                    let n = parse_int(rest.trim())
                        .filter(|&n| n >= 0)
                        .ok_or_else(|| AsmError { line: line_no, msg: "bad .zero count".into() })?;
                    n_data += n as usize;
                }
                other => return err(line_no, format!("unknown directive '.{other}'")),
            }
            continue;
        }
        match section {
            Section::Text => n_instr += 1,
            Section::Data => return err(line_no, "instruction in .data section"),
        }
    }

    // Pass 2: emit.
    let mut text: Vec<Instr> = Vec::with_capacity(n_instr);
    let mut data: Vec<u64> = Vec::with_capacity(n_data);

    for (ln, raw) in src.lines().enumerate() {
        let line_no = ln + 1;
        let mut line = strip_comment(raw);
        while let Some(colon) = line.find(':') {
            let (label, rest) = line.split_at(colon);
            if label.trim().is_empty() || label.trim().contains(char::is_whitespace) {
                break;
            }
            line = rest[1..].trim();
        }
        if line.is_empty() {
            continue;
        }
        if let Some(dir) = line.strip_prefix('.') {
            let (name, rest) = dir.split_once(char::is_whitespace).unwrap_or((dir, ""));
            match name {
                // Section membership was validated in pass 1.
                "text" | "data" => {}
                "word" => {
                    for t in operands(rest) {
                        data.push(parse_data_word(t, line_no)?);
                    }
                }
                "float" => {
                    for t in operands(rest) {
                        let v: f64 = t.parse().map_err(|_| AsmError {
                            line: line_no,
                            msg: format!("bad float '{t}'"),
                        })?;
                        data.push(v.to_bits());
                    }
                }
                "zero" => {
                    let n = parse_int(rest.trim()).unwrap() as usize;
                    data.resize(data.len() + n, 0);
                }
                _ => unreachable!("validated in pass 1"),
            }
            continue;
        }

        let (mnemonic, rest) = line.split_once(char::is_whitespace).unwrap_or((line, ""));
        let ops = operands(rest);
        let ctx = Ctx { labels: &labels, line: line_no, index: text.len() };
        text.push(parse_instr(mnemonic, &ops, &ctx)?);
    }

    let mut symbols = BTreeMap::new();
    for (name, (sec, pos)) in &labels {
        let addr = match sec {
            Section::Text => Program::text_addr(*pos),
            Section::Data => crate::layout::DATA_BASE + (*pos as u64) * crate::WORD_BYTES,
        };
        symbols.insert(name.clone(), addr);
    }
    let entry = symbols.get("main").copied().unwrap_or(Program::text_addr(0));

    let p = Program { text, data, entry, symbols };
    p.validate().map_err(|e| AsmError { line: 0, msg: e.to_string() })?;
    Ok(p)
}

fn parse_instr(m: &str, ops: &[&str], c: &Ctx) -> Result<Instr, AsmError> {
    let need = |n: usize| -> Result<(), AsmError> {
        if ops.len() == n {
            Ok(())
        } else {
            err(c.line, format!("'{m}' expects {n} operands, got {}", ops.len()))
        }
    };

    use Instr::*;
    macro_rules! rrr {
        ($v:ident) => {{
            need(3)?;
            $v { rd: c.reg(ops[0])?, rs1: c.reg(ops[1])?, rs2: c.reg(ops[2])? }
        }};
    }
    macro_rules! rri {
        ($v:ident) => {{
            need(3)?;
            $v { rd: c.reg(ops[0])?, rs1: c.reg(ops[1])?, imm: c.imm(ops[2])? }
        }};
    }
    macro_rules! branch {
        ($v:ident) => {{
            need(3)?;
            $v { rs1: c.reg(ops[0])?, rs2: c.reg(ops[1])?, off: c.target(ops[2])? }
        }};
    }
    macro_rules! fff {
        ($v:ident) => {{
            need(3)?;
            $v { fd: c.freg(ops[0])?, fs1: c.freg(ops[1])?, fs2: c.freg(ops[2])? }
        }};
    }
    macro_rules! ff {
        ($v:ident) => {{
            need(2)?;
            $v { fd: c.freg(ops[0])?, fs1: c.freg(ops[1])? }
        }};
    }
    macro_rules! rff {
        ($v:ident) => {{
            need(3)?;
            $v { rd: c.reg(ops[0])?, fs1: c.freg(ops[1])?, fs2: c.freg(ops[2])? }
        }};
    }

    let i = match m {
        "nop" => {
            need(0)?;
            Nop
        }
        "add" => rrr!(Add),
        "sub" => rrr!(Sub),
        "mul" => rrr!(Mul),
        "div" => rrr!(Div),
        "rem" => rrr!(Rem),
        "and" => rrr!(And),
        "or" => rrr!(Or),
        "xor" => rrr!(Xor),
        "sll" => rrr!(Sll),
        "srl" => rrr!(Srl),
        "sra" => rrr!(Sra),
        "slt" => rrr!(Slt),
        "sltu" => rrr!(Sltu),
        "addi" => rri!(Addi),
        "andi" => rri!(Andi),
        "ori" => rri!(Ori),
        "xori" => rri!(Xori),
        "slli" => rri!(Slli),
        "srli" => rri!(Srli),
        "srai" => rri!(Srai),
        "slti" => rri!(Slti),
        "addih" => rri!(Addih),
        // `li` (and its synonym `la`) accept numeric immediates or any
        // label, which assembles to the label's byte address.
        "li" | "la" => {
            need(2)?;
            Li { rd: c.reg(ops[0])?, imm: c.addr_imm(ops[1])? }
        }
        "ld" => {
            need(2)?;
            let (imm, rs1) = c.mem(ops[1])?;
            Ld { rd: c.reg(ops[0])?, rs1, imm }
        }
        "st" => {
            need(2)?;
            let (imm, rs1) = c.mem(ops[1])?;
            St { rs2: c.reg(ops[0])?, rs1, imm }
        }
        "fld" => {
            need(2)?;
            let (imm, rs1) = c.mem(ops[1])?;
            Fld { fd: c.freg(ops[0])?, rs1, imm }
        }
        "fst" => {
            need(2)?;
            let (imm, rs1) = c.mem(ops[1])?;
            Fst { fs: c.freg(ops[0])?, rs1, imm }
        }
        "beq" => branch!(Beq),
        "bne" => branch!(Bne),
        "blt" => branch!(Blt),
        "bge" => branch!(Bge),
        "bltu" => branch!(Bltu),
        "bgeu" => branch!(Bgeu),
        "j" => {
            need(1)?;
            J { off: c.target(ops[0])? }
        }
        "jal" => {
            need(2)?;
            Jal { rd: c.reg(ops[0])?, off: c.target(ops[1])? }
        }
        "jalr" => {
            need(3)?;
            Jalr { rd: c.reg(ops[0])?, rs1: c.reg(ops[1])?, imm: c.imm(ops[2])? }
        }
        "fadd" => fff!(Fadd),
        "fsub" => fff!(Fsub),
        "fmul" => fff!(Fmul),
        "fdiv" => fff!(Fdiv),
        "fmin" => fff!(Fmin),
        "fmax" => fff!(Fmax),
        "fsqrt" => ff!(Fsqrt),
        "fneg" => ff!(Fneg),
        "fabs" => ff!(Fabs),
        "feq" => rff!(Feq),
        "flt" => rff!(Flt),
        "fle" => rff!(Fle),
        "fcvtlf" => {
            need(2)?;
            Fcvtlf { fd: c.freg(ops[0])?, rs1: c.reg(ops[1])? }
        }
        "fcvtfl" => {
            need(2)?;
            Fcvtfl { rd: c.reg(ops[0])?, fs1: c.freg(ops[1])? }
        }
        "fmvxf" => {
            need(2)?;
            Fmvxf { rd: c.reg(ops[0])?, fs1: c.freg(ops[1])? }
        }
        "fmvfx" => {
            need(2)?;
            Fmvfx { fd: c.freg(ops[0])?, rs1: c.reg(ops[1])? }
        }
        "syscall" => {
            need(1)?;
            let code = c.imm(ops[0])?;
            let code = u16::try_from(code)
                .map_err(|_| AsmError { line: c.line, msg: "syscall code overflow".into() })?;
            Syscall { code }
        }
        "ret" => {
            need(0)?;
            Jalr { rd: Reg::ZERO, rs1: Reg::RA, imm: 0 }
        }
        "mv" => {
            need(2)?;
            Addi { rd: c.reg(ops[0])?, rs1: c.reg(ops[1])?, imm: 0 }
        }
        "call" => {
            need(1)?;
            Jal { rd: Reg::RA, off: c.target(ops[0])? }
        }
        other => return err(c.line, format!("unknown mnemonic '{other}'")),
    };
    Ok(i)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::DATA_BASE;

    #[test]
    fn assembles_loop_with_labels() {
        let p = assemble(
            r#"
            .data
            counter: .word 5
            .text
            main:
              li   t0, 10
            loop:
              addi t0, t0, -1
              bne  t0, zero, loop
              syscall 0
            "#,
        )
        .unwrap();
        assert_eq!(p.text_len(), 4);
        assert_eq!(p.entry, Program::text_addr(0));
        assert_eq!(p.symbol("counter"), Some(DATA_BASE));
        assert_eq!(p.data, vec![5]);
        assert_eq!(p.text[2], Instr::Bne { rs1: Reg::tmp(0), rs2: Reg::ZERO, off: -2 });
    }

    #[test]
    fn forward_references_work() {
        let p = assemble("main:\n  beq zero, zero, done\n  nop\ndone:\n  syscall 0\n").unwrap();
        assert_eq!(p.text[0], Instr::Beq { rs1: Reg::ZERO, rs2: Reg::ZERO, off: 1 });
    }

    #[test]
    fn data_directives() {
        let p = assemble(
            ".data\nv: .float 1.5, -2.0\nz: .zero 3\nw: .word 0x10, -1\n.text\n syscall 0\n",
        )
        .unwrap();
        assert_eq!(p.data.len(), 7);
        assert_eq!(p.data[0], 1.5f64.to_bits());
        assert_eq!(p.data[1], (-2.0f64).to_bits());
        assert_eq!(p.data[2..5], [0, 0, 0]);
        assert_eq!(p.data[5], 0x10);
        assert_eq!(p.data[6], u64::MAX);
        assert_eq!(p.symbol("z"), Some(DATA_BASE + 16));
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = assemble("main:\n  bogus t0, t1\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.msg.contains("bogus"));

        let e = assemble("  beq zero, zero, nowhere\n").unwrap_err();
        assert!(e.msg.contains("nowhere"));

        let e = assemble("  addi t0, t9, 1\n").unwrap_err();
        assert!(e.msg.contains("t9"));
    }

    #[test]
    fn duplicate_labels_rejected() {
        let e = assemble("a:\n nop\na:\n nop\n").unwrap_err();
        assert!(e.msg.contains("duplicate"));
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let p = assemble("# header\n\n  nop // trailing\n  syscall 0 # end\n").unwrap();
        assert_eq!(p.text_len(), 2);
    }

    #[test]
    fn pseudo_ops() {
        let p = assemble("main:\n call f\n syscall 0\nf:\n mv a0, a1\n ret\n").unwrap();
        assert_eq!(p.text[0], Instr::Jal { rd: Reg::RA, off: 1 });
        assert_eq!(p.text[2], Instr::Addi { rd: Reg::arg(0), rs1: Reg::arg(1), imm: 0 });
        assert_eq!(p.text[3], Instr::Jalr { rd: Reg::ZERO, rs1: Reg::RA, imm: 0 });
    }

    #[test]
    fn li_and_la_resolve_labels() {
        let p = assemble(
            ".data\nbuf: .word 7\n.text\nmain:\n  la t0, buf\n  ld a0, 0(t0)\n  li t1, worker\n  syscall 0\nworker:\n  syscall 0\n",
        )
        .unwrap();
        assert_eq!(p.text[0], Instr::Li { rd: Reg::tmp(0), imm: DATA_BASE as i32 });
        assert_eq!(p.text[2], Instr::Li { rd: Reg::tmp(1), imm: Program::text_addr(4) as i32 });
        let e = assemble("  li t0, nowhere\n").unwrap_err();
        assert!(e.msg.contains("nowhere"));
    }

    #[test]
    fn memory_operand_forms() {
        let p = assemble("  ld a0, (sp)\n  st a0, -8(sp)\n  syscall 0\n").unwrap();
        assert_eq!(p.text[0], Instr::Ld { rd: Reg::arg(0), rs1: Reg::SP, imm: 0 });
        assert_eq!(p.text[1], Instr::St { rs2: Reg::arg(0), rs1: Reg::SP, imm: -8 });
    }

    #[test]
    fn main_label_sets_entry() {
        let p = assemble("  nop\nmain:\n  syscall 0\n").unwrap();
        assert_eq!(p.entry, Program::text_addr(1));
    }
}
