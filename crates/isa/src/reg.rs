//! Register file names for the mini ISA.
//!
//! There are 32 integer registers and 32 floating-point registers. `r0` is
//! hardwired to zero, as in MIPS/RISC-V. A light ABI convention is used by
//! the assembler and the kernel builder:
//!
//! | name | regs | role |
//! |------|------|------|
//! | `zero` | r0 | constant 0 |
//! | `ra` | r1 | return address |
//! | `sp` | r2 | stack pointer |
//! | `gp` | r3 | global (data segment) pointer |
//! | `tp` | r4 | thread id |
//! | `a0..a7` | r10–r17 | arguments / syscall operands |
//! | `t0..t6` | r5–r9, r28–r29 | temporaries |
//! | `s0..s9` | r18–r27 | callee-saved |

use std::fmt;

/// An integer register index (0–31). `Reg(0)` always reads as zero.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Reg(pub u8);

/// A floating-point register index (0–31).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FReg(pub u8);

/// Number of integer (and also floating-point) architectural registers.
pub const NUM_REGS: usize = 32;

impl Reg {
    /// Construct a register, panicking if the index is out of range.
    #[inline]
    pub fn new(i: u8) -> Self {
        assert!(i < 32, "integer register index {i} out of range");
        Reg(i)
    }

    /// The hardwired zero register.
    pub const ZERO: Reg = Reg(0);
    /// Return-address register (`jal` link target by convention).
    pub const RA: Reg = Reg(1);
    /// Stack pointer.
    pub const SP: Reg = Reg(2);
    /// Global pointer (base of the data segment).
    pub const GP: Reg = Reg(3);
    /// Thread id register, set by the runtime at thread start.
    pub const TP: Reg = Reg(4);

    /// Argument register `a0`–`a7` (n in 0..8).
    #[inline]
    pub fn arg(n: u8) -> Reg {
        assert!(n < 8, "argument register a{n} does not exist");
        Reg(10 + n)
    }

    /// Temporary register `t0`–`t6` (n in 0..7).
    #[inline]
    pub fn tmp(n: u8) -> Reg {
        assert!(n < 7, "temporary register t{n} does not exist");
        if n < 5 {
            Reg(5 + n)
        } else {
            Reg(28 + (n - 5))
        }
    }

    /// Callee-saved register `s0`–`s9` (n in 0..10).
    #[inline]
    pub fn saved(n: u8) -> Reg {
        assert!(n < 10, "saved register s{n} does not exist");
        Reg(18 + n)
    }

    /// Raw index as usize, for register-file indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The canonical ABI name of this register.
    pub fn abi_name(self) -> String {
        match self.0 {
            0 => "zero".into(),
            1 => "ra".into(),
            2 => "sp".into(),
            3 => "gp".into(),
            4 => "tp".into(),
            5..=9 => format!("t{}", self.0 - 5),
            10..=17 => format!("a{}", self.0 - 10),
            18..=27 => format!("s{}", self.0 - 18),
            28..=29 => format!("t{}", self.0 - 28 + 5),
            _ => format!("r{}", self.0),
        }
    }

    /// Parse an ABI or raw (`rN`) register name.
    pub fn parse(name: &str) -> Option<Reg> {
        let r = match name {
            "zero" => Reg(0),
            "ra" => Reg(1),
            "sp" => Reg(2),
            "gp" => Reg(3),
            "tp" => Reg(4),
            _ => {
                let (prefix, num) = name.split_at(1);
                let n: u8 = num.parse().ok()?;
                match prefix {
                    "r" if n < 32 => Reg(n),
                    "t" if n < 5 => Reg(5 + n),
                    "t" if n < 7 => Reg(28 + n - 5),
                    "a" if n < 8 => Reg(10 + n),
                    "s" if n < 10 => Reg(18 + n),
                    _ => return None,
                }
            }
        };
        Some(r)
    }
}

impl FReg {
    /// Construct an FP register, panicking if the index is out of range.
    #[inline]
    pub fn new(i: u8) -> Self {
        assert!(i < 32, "fp register index {i} out of range");
        FReg(i)
    }

    /// Raw index as usize, for register-file indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Parse an `fN` register name.
    pub fn parse(name: &str) -> Option<FReg> {
        let num = name.strip_prefix('f')?;
        let n: u8 = num.parse().ok()?;
        (n < 32).then_some(FReg(n))
    }
}

impl fmt::Debug for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.abi_name())
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.abi_name())
    }
}

impl fmt::Debug for FReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

impl fmt::Display for FReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn abi_names_round_trip_through_parse() {
        for i in 0..32u8 {
            let r = Reg::new(i);
            assert_eq!(Reg::parse(&r.abi_name()), Some(r), "reg {i}");
        }
    }

    #[test]
    fn raw_names_parse() {
        for i in 0..32u8 {
            assert_eq!(Reg::parse(&format!("r{i}")), Some(Reg(i)));
            assert_eq!(FReg::parse(&format!("f{i}")), Some(FReg(i)));
        }
    }

    #[test]
    fn out_of_range_rejected() {
        assert_eq!(Reg::parse("r32"), None);
        assert_eq!(Reg::parse("a8"), None);
        assert_eq!(Reg::parse("t7"), None);
        assert_eq!(Reg::parse("s10"), None);
        assert_eq!(FReg::parse("f32"), None);
        assert_eq!(FReg::parse("g1"), None);
    }

    #[test]
    fn helper_constructors_map_to_expected_indices() {
        assert_eq!(Reg::arg(0), Reg(10));
        assert_eq!(Reg::arg(7), Reg(17));
        assert_eq!(Reg::tmp(0), Reg(5));
        assert_eq!(Reg::tmp(4), Reg(9));
        assert_eq!(Reg::tmp(5), Reg(28));
        assert_eq!(Reg::tmp(6), Reg(29));
        assert_eq!(Reg::saved(0), Reg(18));
        assert_eq!(Reg::saved(9), Reg(27));
    }

    #[test]
    #[should_panic]
    fn constructor_panics_out_of_range() {
        let _ = Reg::new(32);
    }
}
