//! Programmatic assembly: the [`ProgramBuilder`] DSL.
//!
//! The SPLASH-2-like kernels in `sk-kernels` are too large to write as text
//! assembly, so they are emitted through this builder, which provides
//! labels with automatic branch fixups, a data segment allocator and
//! pseudo-instructions (`li` for 64-bit constants, `la_text` for function
//! addresses, `call`/`ret`).
//!
//! ```
//! use sk_isa::{ProgramBuilder, Reg, Syscall};
//!
//! let mut b = ProgramBuilder::new();
//! let counter = b.zeros("counter", 1);
//! let loop_top = b.new_label("loop");
//! b.li(Reg::tmp(0), 10);
//! b.li(Reg::tmp(2), counter as i64);
//! b.bind(loop_top);
//! b.ld(Reg::tmp(1), Reg::tmp(2), 0);
//! b.addi(Reg::tmp(1), Reg::tmp(1), 1);
//! b.st(Reg::tmp(1), Reg::tmp(2), 0);
//! b.addi(Reg::tmp(0), Reg::tmp(0), -1);
//! b.bne(Reg::tmp(0), Reg::ZERO, loop_top);
//! b.sys(Syscall::Exit);
//! let program = b.build().unwrap();
//! assert_eq!(program.text_len(), 8);
//! ```

use crate::instr::Instr;
use crate::layout::DATA_BASE;
use crate::program::{Program, ProgramError};
use crate::reg::{FReg, Reg};
use crate::syscall::Syscall;
use crate::WORD_BYTES;
use std::collections::BTreeMap;

/// A forward-referenceable code label.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Label(usize);

#[derive(Clone, Copy, Debug)]
enum BranchKind {
    Beq,
    Bne,
    Blt,
    Bge,
    Bltu,
    Bgeu,
}

#[derive(Clone, Debug)]
enum Item {
    /// A fully resolved instruction.
    Fixed(Instr),
    /// Conditional branch to a label (1 word).
    Branch { kind: BranchKind, rs1: Reg, rs2: Reg, label: Label },
    /// Unconditional jump to a label (1 word).
    Jump { label: Label },
    /// Jump-and-link to a label (1 word).
    JumpLink { rd: Reg, label: Label },
    /// Load the byte address of a text label (always 2 words: Li + Addih).
    LaText { rd: Reg, label: Label },
}

impl Item {
    fn words(&self) -> usize {
        match self {
            Item::LaText { .. } => 2,
            _ => 1,
        }
    }
}

/// Incremental program constructor with labels and a data allocator.
///
/// All emit methods append at the current position and return `&mut Self`
/// only implicitly (they take `&mut self`); sequencing is by statement
/// order, as in an assembler listing.
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    items: Vec<(usize, Item)>, // (instruction index, item)
    next_index: usize,
    labels: Vec<Option<usize>>, // label id -> bound instruction index
    label_names: Vec<String>,
    data: Vec<u64>,
    symbols: BTreeMap<String, u64>,
    entry_label: Option<Label>,
}

impl ProgramBuilder {
    /// New empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    // ---- labels ----

    /// Create a new unbound label. The name is kept for diagnostics and the
    /// final symbol table.
    pub fn new_label(&mut self, name: &str) -> Label {
        self.labels.push(None);
        self.label_names.push(name.to_string());
        Label(self.labels.len() - 1)
    }

    /// Bind `label` to the current position.
    pub fn bind(&mut self, label: Label) {
        assert!(
            self.labels[label.0].is_none(),
            "label {:?} bound twice",
            self.label_names[label.0]
        );
        self.labels[label.0] = Some(self.next_index);
    }

    /// Create a label already bound to the current position.
    pub fn here(&mut self, name: &str) -> Label {
        let l = self.new_label(name);
        self.bind(l);
        l
    }

    /// Mark `label` as the program entry point (defaults to index 0).
    pub fn entry(&mut self, label: Label) {
        self.entry_label = Some(label);
    }

    // ---- data segment ----

    /// Append named words to the data segment; returns their byte address.
    pub fn words(&mut self, name: &str, values: &[u64]) -> u64 {
        let addr = DATA_BASE + (self.data.len() as u64) * WORD_BYTES;
        self.data.extend_from_slice(values);
        self.symbols.insert(name.to_string(), addr);
        addr
    }

    /// Append named f64 constants; returns their byte address.
    pub fn floats(&mut self, name: &str, values: &[f64]) -> u64 {
        let bits: Vec<u64> = values.iter().map(|v| v.to_bits()).collect();
        self.words(name, &bits)
    }

    /// Reserve `n` zeroed words; returns their byte address.
    pub fn zeros(&mut self, name: &str, n: usize) -> u64 {
        let addr = DATA_BASE + (self.data.len() as u64) * WORD_BYTES;
        self.data.resize(self.data.len() + n, 0);
        self.symbols.insert(name.to_string(), addr);
        addr
    }

    /// Current size of the data segment in words.
    pub fn data_len(&self) -> usize {
        self.data.len()
    }

    // ---- raw emission ----

    /// Append one resolved instruction.
    pub fn emit(&mut self, i: Instr) {
        self.push(Item::Fixed(i));
    }

    fn push(&mut self, item: Item) {
        let w = item.words();
        self.items.push((self.next_index, item));
        self.next_index += w;
    }

    /// Index of the next instruction to be emitted.
    pub fn position(&self) -> usize {
        self.next_index
    }

    // ---- pseudo-instructions ----

    /// Load an arbitrary 64-bit constant with the minimal sequence
    /// (1 instruction if it fits in a sign-extended i32, else 2).
    pub fn li(&mut self, rd: Reg, value: i64) {
        let low = value as i32;
        if low as i64 == value {
            self.emit(Instr::Li { rd, imm: low });
        } else {
            // value = sign_extend(low) + (high << 32) under wrapping
            // arithmetic, solve for high.
            let high = (value.wrapping_sub(low as i64) >> 32) as i32;
            self.emit(Instr::Li { rd, imm: low });
            self.emit(Instr::Addih { rd, rs1: rd, imm: high });
        }
    }

    /// Load the address of a text label (fixed 2-word sequence).
    pub fn la_text(&mut self, rd: Reg, label: Label) {
        self.push(Item::LaText { rd, label });
    }

    /// Register-to-register move.
    pub fn mv(&mut self, rd: Reg, rs: Reg) {
        self.emit(Instr::Addi { rd, rs1: rs, imm: 0 });
    }

    /// FP register move.
    pub fn fmv(&mut self, fd: FReg, fs: FReg) {
        self.emit(Instr::Fmin { fd, fs1: fs, fs2: fs });
    }

    /// Call a function (jump-and-link through `ra`).
    pub fn call(&mut self, label: Label) {
        self.push(Item::JumpLink { rd: Reg::RA, label });
    }

    /// Return from a function.
    pub fn ret(&mut self) {
        self.emit(Instr::Jalr { rd: Reg::ZERO, rs1: Reg::RA, imm: 0 });
    }

    /// Emit a syscall.
    pub fn sys(&mut self, s: Syscall) {
        self.emit(Instr::Syscall { code: s.code() });
    }

    /// No-op.
    pub fn nop(&mut self) {
        self.emit(Instr::Nop);
    }

    // ---- control flow ----

    /// Unconditional jump to a label.
    pub fn j(&mut self, label: Label) {
        self.push(Item::Jump { label });
    }

    /// Jump-and-link to a label with an explicit link register.
    pub fn jal(&mut self, rd: Reg, label: Label) {
        self.push(Item::JumpLink { rd, label });
    }

    fn branch(&mut self, kind: BranchKind, rs1: Reg, rs2: Reg, label: Label) {
        self.push(Item::Branch { kind, rs1, rs2, label });
    }

    /// Branch if equal.
    pub fn beq(&mut self, rs1: Reg, rs2: Reg, label: Label) {
        self.branch(BranchKind::Beq, rs1, rs2, label);
    }
    /// Branch if not equal.
    pub fn bne(&mut self, rs1: Reg, rs2: Reg, label: Label) {
        self.branch(BranchKind::Bne, rs1, rs2, label);
    }
    /// Branch if less-than (signed).
    pub fn blt(&mut self, rs1: Reg, rs2: Reg, label: Label) {
        self.branch(BranchKind::Blt, rs1, rs2, label);
    }
    /// Branch if greater-or-equal (signed).
    pub fn bge(&mut self, rs1: Reg, rs2: Reg, label: Label) {
        self.branch(BranchKind::Bge, rs1, rs2, label);
    }
    /// Branch if less-than (unsigned).
    pub fn bltu(&mut self, rs1: Reg, rs2: Reg, label: Label) {
        self.branch(BranchKind::Bltu, rs1, rs2, label);
    }
    /// Branch if greater-or-equal (unsigned).
    pub fn bgeu(&mut self, rs1: Reg, rs2: Reg, label: Label) {
        self.branch(BranchKind::Bgeu, rs1, rs2, label);
    }

    // ---- common instruction helpers ----

    /// `rd = rs1 + rs2`.
    pub fn add(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.emit(Instr::Add { rd, rs1, rs2 });
    }
    /// `rd = rs1 - rs2`.
    pub fn sub(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.emit(Instr::Sub { rd, rs1, rs2 });
    }
    /// `rd = rs1 * rs2`.
    pub fn mul(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.emit(Instr::Mul { rd, rs1, rs2 });
    }
    /// `rd = rs1 / rs2` (signed).
    pub fn div(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.emit(Instr::Div { rd, rs1, rs2 });
    }
    /// `rd = rs1 % rs2` (signed).
    pub fn rem(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.emit(Instr::Rem { rd, rs1, rs2 });
    }
    /// `rd = rs1 + imm`.
    pub fn addi(&mut self, rd: Reg, rs1: Reg, imm: i32) {
        self.emit(Instr::Addi { rd, rs1, imm });
    }
    /// `rd = rs1 << imm`.
    pub fn slli(&mut self, rd: Reg, rs1: Reg, imm: i32) {
        self.emit(Instr::Slli { rd, rs1, imm });
    }
    /// `rd = rs1 >> imm` (logical).
    pub fn srli(&mut self, rd: Reg, rs1: Reg, imm: i32) {
        self.emit(Instr::Srli { rd, rs1, imm });
    }
    /// `rd = rs1 & imm`.
    pub fn andi(&mut self, rd: Reg, rs1: Reg, imm: i32) {
        self.emit(Instr::Andi { rd, rs1, imm });
    }
    /// `rd = rs1 ^ rs2`.
    pub fn xor(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.emit(Instr::Xor { rd, rs1, rs2 });
    }
    /// `rd = (rs1 < rs2) ? 1 : 0` (signed).
    pub fn slt(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.emit(Instr::Slt { rd, rs1, rs2 });
    }
    /// `rd = mem[rs1 + imm]`.
    pub fn ld(&mut self, rd: Reg, rs1: Reg, imm: i32) {
        self.emit(Instr::Ld { rd, rs1, imm });
    }
    /// `mem[rs1 + imm] = rs2`.
    pub fn st(&mut self, rs2: Reg, rs1: Reg, imm: i32) {
        self.emit(Instr::St { rs2, rs1, imm });
    }
    /// `fd = mem[rs1 + imm]`.
    pub fn fld(&mut self, fd: FReg, rs1: Reg, imm: i32) {
        self.emit(Instr::Fld { fd, rs1, imm });
    }
    /// `mem[rs1 + imm] = fs`.
    pub fn fst(&mut self, fs: FReg, rs1: Reg, imm: i32) {
        self.emit(Instr::Fst { fs, rs1, imm });
    }
    /// `fd = fs1 + fs2`.
    pub fn fadd(&mut self, fd: FReg, fs1: FReg, fs2: FReg) {
        self.emit(Instr::Fadd { fd, fs1, fs2 });
    }
    /// `fd = fs1 - fs2`.
    pub fn fsub(&mut self, fd: FReg, fs1: FReg, fs2: FReg) {
        self.emit(Instr::Fsub { fd, fs1, fs2 });
    }
    /// `fd = fs1 * fs2`.
    pub fn fmul(&mut self, fd: FReg, fs1: FReg, fs2: FReg) {
        self.emit(Instr::Fmul { fd, fs1, fs2 });
    }
    /// `fd = fs1 / fs2`.
    pub fn fdiv(&mut self, fd: FReg, fs1: FReg, fs2: FReg) {
        self.emit(Instr::Fdiv { fd, fs1, fs2 });
    }
    /// `fd = sqrt(fs1)`.
    pub fn fsqrt(&mut self, fd: FReg, fs1: FReg) {
        self.emit(Instr::Fsqrt { fd, fs1 });
    }

    // ---- linking ----

    fn resolve(&self, label: Label) -> Result<usize, String> {
        self.labels[label.0].ok_or_else(|| format!("unbound label {:?}", self.label_names[label.0]))
    }

    /// Resolve all fixups and produce a validated [`Program`].
    ///
    /// Fails if a referenced label was never bound or if a resolved branch
    /// leaves the text segment ([`ProgramError`]).
    pub fn build(self) -> Result<Program, String> {
        let mut text = Vec::with_capacity(self.next_index);
        for &(at, ref item) in &self.items {
            debug_assert_eq!(at, text.len());
            match *item {
                Item::Fixed(i) => text.push(i),
                Item::Branch { kind, rs1, rs2, label } => {
                    let tgt = self.resolve(label)?;
                    let off = tgt as i64 - (at as i64 + 1);
                    let off = i32::try_from(off).map_err(|_| "branch offset overflow")?;
                    text.push(match kind {
                        BranchKind::Beq => Instr::Beq { rs1, rs2, off },
                        BranchKind::Bne => Instr::Bne { rs1, rs2, off },
                        BranchKind::Blt => Instr::Blt { rs1, rs2, off },
                        BranchKind::Bge => Instr::Bge { rs1, rs2, off },
                        BranchKind::Bltu => Instr::Bltu { rs1, rs2, off },
                        BranchKind::Bgeu => Instr::Bgeu { rs1, rs2, off },
                    });
                }
                Item::Jump { label } => {
                    let tgt = self.resolve(label)?;
                    let off = i32::try_from(tgt as i64 - (at as i64 + 1))
                        .map_err(|_| "jump offset overflow")?;
                    text.push(Instr::J { off });
                }
                Item::JumpLink { rd, label } => {
                    let tgt = self.resolve(label)?;
                    let off = i32::try_from(tgt as i64 - (at as i64 + 1))
                        .map_err(|_| "jump offset overflow")?;
                    text.push(Instr::Jal { rd, off });
                }
                Item::LaText { rd, label } => {
                    let tgt = self.resolve(label)?;
                    let addr = Program::text_addr(tgt);
                    let low = addr as i32;
                    let high = ((addr as i64).wrapping_sub(low as i64) >> 32) as i32;
                    text.push(Instr::Li { rd, imm: low });
                    text.push(Instr::Addih { rd, rs1: rd, imm: high });
                }
            }
        }

        let entry = match self.entry_label {
            Some(l) => Program::text_addr(self.resolve(l)?),
            None => Program::text_addr(0),
        };

        let mut symbols = self.symbols;
        for (id, bound) in self.labels.iter().enumerate() {
            if let Some(idx) = bound {
                symbols
                    .entry(self.label_names[id].clone())
                    .or_insert_with(|| Program::text_addr(*idx));
            }
        }

        let p = Program { text, data: self.data, entry, symbols };
        p.validate().map_err(|e: ProgramError| e.to_string())?;
        Ok(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_and_backward_branches_resolve() {
        let mut b = ProgramBuilder::new();
        let fwd = b.new_label("fwd");
        let top = b.here("top");
        b.addi(Reg::tmp(0), Reg::tmp(0), 1);
        b.beq(Reg::tmp(0), Reg::ZERO, fwd);
        b.j(top);
        b.bind(fwd);
        b.sys(Syscall::Exit);
        let p = b.build().unwrap();
        // beq at index 1 targets index 3 -> off = 1; j at 2 targets 0 -> off = -3
        assert_eq!(p.text[1], Instr::Beq { rs1: Reg::tmp(0), rs2: Reg::ZERO, off: 1 });
        assert_eq!(p.text[2], Instr::J { off: -3 });
        assert_eq!(p.symbol("top"), Some(Program::text_addr(0)));
        assert_eq!(p.symbol("fwd"), Some(Program::text_addr(3)));
    }

    #[test]
    fn unbound_label_fails_build() {
        let mut b = ProgramBuilder::new();
        let l = b.new_label("nowhere");
        b.j(l);
        assert!(b.build().unwrap_err().contains("nowhere"));
    }

    #[test]
    fn li_uses_one_word_when_possible() {
        let mut b = ProgramBuilder::new();
        b.li(Reg::tmp(0), 42);
        b.li(Reg::tmp(0), -42);
        b.sys(Syscall::Exit);
        assert_eq!(b.build().unwrap().text_len(), 3);
    }

    #[test]
    fn li_handles_full_64_bit_range() {
        for v in [i64::MAX, i64::MIN, 0x1234_5678_9abc_def0u64 as i64, -1, 1 << 32] {
            let mut b = ProgramBuilder::new();
            b.li(Reg::tmp(0), v);
            b.sys(Syscall::Exit);
            let p = b.build().unwrap();
            // Reconstruct the constant the way the core would execute it.
            let mut acc: i64 = 0;
            for ins in &p.text {
                match *ins {
                    Instr::Li { imm, .. } => acc = imm as i64,
                    Instr::Addih { imm, .. } => acc = acc.wrapping_add((imm as i64) << 32),
                    _ => {}
                }
            }
            assert_eq!(acc, v, "li of {v:#x}");
        }
    }

    #[test]
    fn la_text_is_always_two_words() {
        let mut b = ProgramBuilder::new();
        let f = b.new_label("f");
        b.la_text(Reg::arg(0), f);
        b.sys(Syscall::Exit);
        b.bind(f);
        b.ret();
        let p = b.build().unwrap();
        assert_eq!(p.text_len(), 4);
        assert_eq!(p.text[0], Instr::Li { rd: Reg::arg(0), imm: Program::text_addr(3) as i32 });
        assert_eq!(p.text[1], Instr::Addih { rd: Reg::arg(0), rs1: Reg::arg(0), imm: 0 });
    }

    #[test]
    fn data_allocator_assigns_disjoint_addresses() {
        let mut b = ProgramBuilder::new();
        let a = b.words("a", &[1, 2]);
        let c = b.floats("c", &[1.5]);
        let z = b.zeros("z", 4);
        assert_eq!(c, a + 16);
        assert_eq!(z, c + 8);
        b.sys(Syscall::Exit);
        let p = b.build().unwrap();
        assert_eq!(p.data.len(), 7);
        assert_eq!(p.data[2], 1.5f64.to_bits());
        assert_eq!(p.symbol("z"), Some(z));
    }

    #[test]
    fn entry_label_is_respected() {
        let mut b = ProgramBuilder::new();
        b.nop();
        let main = b.here("main");
        b.sys(Syscall::Exit);
        b.entry(main);
        let p = b.build().unwrap();
        assert_eq!(p.entry, Program::text_addr(1));
    }

    #[test]
    #[should_panic(expected = "bound twice")]
    fn double_bind_panics() {
        let mut b = ProgramBuilder::new();
        let l = b.new_label("l");
        b.bind(l);
        b.bind(l);
    }
}
