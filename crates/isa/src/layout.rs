//! Address-space layout of a simulated workload.
//!
//! The simulated machine has a single flat physical address space shared by
//! all target cores (the target is a cache-coherent CMP). The conventional
//! layout used by the loader and the program builder:
//!
//! ```text
//! 0x0000_1000  TEXT_BASE    instructions, one per 8-byte word
//! 0x0010_0000  DATA_BASE    global data segment (gp points here)
//! 0x0400_0000  HEAP_BASE    bump-allocated shared heap
//! 0x0800_0000  STACK_BASE   per-thread stacks, STACK_STRIDE apart, growing down
//! ```

/// Base address of the text segment.
pub const TEXT_BASE: u64 = 0x0000_1000;
/// Base address of the data segment (`gp` register value).
pub const DATA_BASE: u64 = 0x0010_0000;
/// Base address of the shared heap.
pub const HEAP_BASE: u64 = 0x0400_0000;
/// Base of the stack region.
pub const STACK_BASE: u64 = 0x0800_0000;
/// Distance between consecutive threads' stacks (1 MiB).
pub const STACK_STRIDE: u64 = 0x0010_0000;

/// Initial stack pointer for thread `tid` (top of its stack, exclusive).
#[inline]
pub fn stack_top(tid: usize) -> u64 {
    STACK_BASE + (tid as u64 + 1) * STACK_STRIDE
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stacks_do_not_overlap_and_are_aligned() {
        for t in 0..64 {
            let top = stack_top(t);
            assert_eq!(top % 8, 0);
            assert!(top > STACK_BASE);
            assert_eq!(stack_top(t + 1) - top, STACK_STRIDE);
        }
    }

    #[test]
    fn segments_are_ordered_and_disjoint() {
        let bases = [TEXT_BASE, DATA_BASE, HEAP_BASE, STACK_BASE];
        assert!(bases.windows(2).all(|w| w[0] < w[1]), "segments out of order");
    }
}
