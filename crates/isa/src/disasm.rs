//! Instruction formatting (disassembly).
//!
//! The output syntax is exactly what [`crate::asm::assemble`] accepts, so
//! `assemble(disassemble(p))` reproduces the original text segment; this is
//! enforced by property tests at the crate root.

use crate::instr::Instr;
use crate::program::Program;
use std::fmt::Write as _;

/// Render one instruction in assembler syntax.
pub fn format_instr(i: &Instr) -> String {
    use Instr::*;
    match *i {
        Nop => "nop".into(),
        Add { rd, rs1, rs2 } => format!("add {rd}, {rs1}, {rs2}"),
        Sub { rd, rs1, rs2 } => format!("sub {rd}, {rs1}, {rs2}"),
        Mul { rd, rs1, rs2 } => format!("mul {rd}, {rs1}, {rs2}"),
        Div { rd, rs1, rs2 } => format!("div {rd}, {rs1}, {rs2}"),
        Rem { rd, rs1, rs2 } => format!("rem {rd}, {rs1}, {rs2}"),
        And { rd, rs1, rs2 } => format!("and {rd}, {rs1}, {rs2}"),
        Or { rd, rs1, rs2 } => format!("or {rd}, {rs1}, {rs2}"),
        Xor { rd, rs1, rs2 } => format!("xor {rd}, {rs1}, {rs2}"),
        Sll { rd, rs1, rs2 } => format!("sll {rd}, {rs1}, {rs2}"),
        Srl { rd, rs1, rs2 } => format!("srl {rd}, {rs1}, {rs2}"),
        Sra { rd, rs1, rs2 } => format!("sra {rd}, {rs1}, {rs2}"),
        Slt { rd, rs1, rs2 } => format!("slt {rd}, {rs1}, {rs2}"),
        Sltu { rd, rs1, rs2 } => format!("sltu {rd}, {rs1}, {rs2}"),
        Addi { rd, rs1, imm } => format!("addi {rd}, {rs1}, {imm}"),
        Andi { rd, rs1, imm } => format!("andi {rd}, {rs1}, {imm}"),
        Ori { rd, rs1, imm } => format!("ori {rd}, {rs1}, {imm}"),
        Xori { rd, rs1, imm } => format!("xori {rd}, {rs1}, {imm}"),
        Slli { rd, rs1, imm } => format!("slli {rd}, {rs1}, {imm}"),
        Srli { rd, rs1, imm } => format!("srli {rd}, {rs1}, {imm}"),
        Srai { rd, rs1, imm } => format!("srai {rd}, {rs1}, {imm}"),
        Slti { rd, rs1, imm } => format!("slti {rd}, {rs1}, {imm}"),
        Li { rd, imm } => format!("li {rd}, {imm}"),
        Addih { rd, rs1, imm } => format!("addih {rd}, {rs1}, {imm}"),
        Ld { rd, rs1, imm } => format!("ld {rd}, {imm}({rs1})"),
        St { rs2, rs1, imm } => format!("st {rs2}, {imm}({rs1})"),
        Fld { fd, rs1, imm } => format!("fld {fd}, {imm}({rs1})"),
        Fst { fs, rs1, imm } => format!("fst {fs}, {imm}({rs1})"),
        Beq { rs1, rs2, off } => format!("beq {rs1}, {rs2}, {off}"),
        Bne { rs1, rs2, off } => format!("bne {rs1}, {rs2}, {off}"),
        Blt { rs1, rs2, off } => format!("blt {rs1}, {rs2}, {off}"),
        Bge { rs1, rs2, off } => format!("bge {rs1}, {rs2}, {off}"),
        Bltu { rs1, rs2, off } => format!("bltu {rs1}, {rs2}, {off}"),
        Bgeu { rs1, rs2, off } => format!("bgeu {rs1}, {rs2}, {off}"),
        J { off } => format!("j {off}"),
        Jal { rd, off } => format!("jal {rd}, {off}"),
        Jalr { rd, rs1, imm } => format!("jalr {rd}, {rs1}, {imm}"),
        Fadd { fd, fs1, fs2 } => format!("fadd {fd}, {fs1}, {fs2}"),
        Fsub { fd, fs1, fs2 } => format!("fsub {fd}, {fs1}, {fs2}"),
        Fmul { fd, fs1, fs2 } => format!("fmul {fd}, {fs1}, {fs2}"),
        Fdiv { fd, fs1, fs2 } => format!("fdiv {fd}, {fs1}, {fs2}"),
        Fmin { fd, fs1, fs2 } => format!("fmin {fd}, {fs1}, {fs2}"),
        Fmax { fd, fs1, fs2 } => format!("fmax {fd}, {fs1}, {fs2}"),
        Fsqrt { fd, fs1 } => format!("fsqrt {fd}, {fs1}"),
        Fneg { fd, fs1 } => format!("fneg {fd}, {fs1}"),
        Fabs { fd, fs1 } => format!("fabs {fd}, {fs1}"),
        Feq { rd, fs1, fs2 } => format!("feq {rd}, {fs1}, {fs2}"),
        Flt { rd, fs1, fs2 } => format!("flt {rd}, {fs1}, {fs2}"),
        Fle { rd, fs1, fs2 } => format!("fle {rd}, {fs1}, {fs2}"),
        Fcvtlf { fd, rs1 } => format!("fcvtlf {fd}, {rs1}"),
        Fcvtfl { rd, fs1 } => format!("fcvtfl {rd}, {fs1}"),
        Fmvxf { rd, fs1 } => format!("fmvxf {rd}, {fs1}"),
        Fmvfx { fd, rs1 } => format!("fmvfx {fd}, {rs1}"),
        Syscall { code } => format!("syscall {code}"),
    }
}

/// Render a whole program as an assembler listing (text section only,
/// with data emitted as `.data` directives).
pub fn disassemble(p: &Program) -> String {
    let mut out = String::new();
    if !p.data.is_empty() {
        out.push_str(".data\n");
        // Re-emit named data symbols where they fall; unnamed ranges get .word runs.
        let mut names: Vec<(&String, u64)> = p
            .symbols
            .iter()
            .filter(|(_, &a)| a >= crate::layout::DATA_BASE)
            .map(|(n, &a)| (n, a))
            .collect();
        names.sort_by_key(|&(_, a)| a);
        let mut name_at = std::collections::BTreeMap::new();
        for (n, a) in names {
            name_at.insert(a, n);
        }
        for (i, w) in p.data.iter().enumerate() {
            let addr = crate::layout::DATA_BASE + (i as u64) * crate::WORD_BYTES;
            if let Some(n) = name_at.get(&addr) {
                let _ = writeln!(out, "{n}:");
            }
            let _ = writeln!(out, "  .word {w:#x}");
        }
    }
    out.push_str(".text\n");
    for (i, ins) in p.text.iter().enumerate() {
        if p.entry == Program::text_addr(i) {
            out.push_str("__entry:\n");
        }
        let _ = writeln!(out, "  {}", format_instr(ins));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::{FReg, Reg};

    #[test]
    fn formats_use_abi_names() {
        let i = Instr::Add { rd: Reg(10), rs1: Reg(2), rs2: Reg(18) };
        assert_eq!(format_instr(&i), "add a0, sp, s0");
    }

    #[test]
    fn memory_operands_use_offset_base_syntax() {
        let i = Instr::Ld { rd: Reg(5), rs1: Reg(3), imm: -16 };
        assert_eq!(format_instr(&i), "ld t0, -16(gp)");
        let i = Instr::Fst { fs: FReg(7), rs1: Reg(2), imm: 8 };
        assert_eq!(format_instr(&i), "fst f7, 8(sp)");
    }

    #[test]
    fn listing_contains_entry_marker() {
        let p = Program {
            text: vec![Instr::Nop, Instr::Syscall { code: 0 }],
            data: vec![],
            entry: Program::text_addr(1),
            symbols: Default::default(),
        };
        let s = disassemble(&p);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[0], ".text");
        assert_eq!(lines[1], "  nop");
        assert_eq!(lines[2], "__entry:");
        assert_eq!(lines[3], "  syscall 0");
    }
}
