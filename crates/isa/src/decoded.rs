//! Predecoded instruction tables.
//!
//! The timing models and the interpreter all sit in per-cycle loops that used
//! to re-derive operand registers (`int_srcs()`, `fp_srcs()`, `fu_class()`,
//! `rel_target()`, ...) from the [`Instr`] enum on every fetch. Those
//! accessors are cheap individually but each is a full match over ~50
//! variants, and the hot path runs several of them per instruction per cycle.
//!
//! [`DecodedProgram`] folds all of that work into load time: the text segment
//! is decoded **once** into a flat table of [`DecodedInstr`] records with the
//! operand registers, functional-unit class, branch target offset, and
//! classification flags pre-resolved. At fetch time the models do one bounds
//! check and an array index.
//!
//! The table is built from the program image and is *not* updated by stores
//! to the text segment. The simulated machine has no self-modifying-code
//! contract (nothing in the workload API can branch into written data), so
//! this matches the architectural model; the deviation is documented in
//! DESIGN.md. PCs outside the table (runaway jumps) simply miss and fall back
//! to the fetch-word-and-decode path, preserving the exact bad-fetch
//! semantics of the pre-table models.

use crate::encode::decode;
use crate::instr::{FuClass, Instr};
use crate::layout::TEXT_BASE;
use crate::program::Program;
use crate::reg::{FReg, Reg};
use crate::WORD_BYTES;

/// One predecoded instruction: the original [`Instr`] plus every derived
/// fact the timing models ask for on the per-cycle hot path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DecodedInstr {
    /// The architectural instruction (still needed by the executors).
    pub instr: Instr,
    /// Functional-unit class (`instr.fu_class()`).
    pub fu: FuClass,
    /// Integer destination register, if any.
    pub int_dst: Option<Reg>,
    /// Floating-point destination register, if any.
    pub fp_dst: Option<FReg>,
    /// Integer source registers (`instr.int_srcs()`).
    pub int_srcs: [Option<Reg>; 2],
    /// Floating-point source registers (`instr.fp_srcs()`).
    pub fp_srcs: [Option<FReg>; 2],
    /// PC-relative branch/jump offset (`instr.rel_target()`).
    pub rel_target: Option<i32>,
    flags: u8,
}

const F_LOAD: u8 = 1 << 0;
const F_STORE: u8 = 1 << 1;
const F_COND_BRANCH: u8 = 1 << 2;
const F_CONTROL: u8 = 1 << 3;

impl DecodedInstr {
    /// Predecode one instruction, resolving every derived accessor once.
    pub fn new(instr: Instr) -> Self {
        let mut flags = 0;
        if instr.is_load() {
            flags |= F_LOAD;
        }
        if instr.is_store() {
            flags |= F_STORE;
        }
        if instr.is_cond_branch() {
            flags |= F_COND_BRANCH;
        }
        if instr.is_control() {
            flags |= F_CONTROL;
        }
        DecodedInstr {
            fu: instr.fu_class(),
            int_dst: instr.int_dst(),
            fp_dst: instr.fp_dst(),
            int_srcs: instr.int_srcs(),
            fp_srcs: instr.fp_srcs(),
            rel_target: instr.rel_target(),
            flags,
            instr,
        }
    }

    /// Memory load (`Ld`/`Fld`)?
    #[inline]
    pub fn is_load(&self) -> bool {
        self.flags & F_LOAD != 0
    }

    /// Memory store (`St`/`Fst`)?
    #[inline]
    pub fn is_store(&self) -> bool {
        self.flags & F_STORE != 0
    }

    /// Any memory access?
    #[inline]
    pub fn is_mem(&self) -> bool {
        self.flags & (F_LOAD | F_STORE) != 0
    }

    /// Conditional branch?
    #[inline]
    pub fn is_cond_branch(&self) -> bool {
        self.flags & F_COND_BRANCH != 0
    }

    /// Control transfer (branch, jump, call, return)?
    #[inline]
    pub fn is_control(&self) -> bool {
        self.flags & F_CONTROL != 0
    }

    /// Syscall instruction?
    #[inline]
    pub fn is_syscall(&self) -> bool {
        self.fu == FuClass::Syscall
    }
}

/// Flat predecoded view of a program's text segment, indexed by PC.
///
/// Built once at load (or snapshot-resume) time and shared read-only by
/// every core thread.
#[derive(Debug, Default)]
pub struct DecodedProgram {
    table: Vec<DecodedInstr>,
}

impl DecodedProgram {
    /// Predecode a program's text segment.
    pub fn from_program(p: &Program) -> Self {
        DecodedProgram { table: p.text.iter().map(|i| DecodedInstr::new(*i)).collect() }
    }

    /// Rebuild a table from raw encoded text words (snapshot resume reads
    /// them back out of functional memory). Decoding stops at the first
    /// word that is not a valid instruction: later PCs then miss the table
    /// and take the fall-back fetch path, which reproduces the exact
    /// bad-fetch behaviour the word would have produced anyway.
    pub fn from_words<I: IntoIterator<Item = u64>>(words: I) -> Self {
        let mut table = Vec::new();
        for w in words {
            match decode(w) {
                Ok(i) => table.push(DecodedInstr::new(i)),
                Err(_) => break,
            }
        }
        DecodedProgram { table }
    }

    /// Number of predecoded instructions.
    #[inline]
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// True when the text segment is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }

    /// Predecoded instruction at text index `idx`.
    #[inline]
    pub fn get(&self, idx: usize) -> Option<&DecodedInstr> {
        self.table.get(idx)
    }

    /// Predecoded instruction at program counter `pc`, or `None` when `pc`
    /// lies outside the (decodable) text segment or is misaligned. Mirrors
    /// [`Program::text_index`].
    #[inline]
    pub fn lookup(&self, pc: u64) -> Option<&DecodedInstr> {
        if pc < TEXT_BASE || !pc.is_multiple_of(WORD_BYTES) {
            return None;
        }
        self.table.get(((pc - TEXT_BASE) / WORD_BYTES) as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::encode::encode;
    use crate::syscall::Syscall;

    fn sample_program() -> Program {
        let mut b = ProgramBuilder::new();
        let start = b.here("start");
        b.addi(Reg::new(1), Reg::ZERO, 7);
        b.ld(Reg::new(2), Reg::new(1), 0);
        b.st(Reg::new(2), Reg::new(1), 8);
        b.beq(Reg::new(1), Reg::new(2), start);
        b.fadd(FReg::new(1), FReg::new(2), FReg::new(3));
        b.sys(Syscall::Exit);
        b.build().expect("sample program builds")
    }

    #[test]
    fn predecode_matches_accessors_for_whole_text() {
        let p = sample_program();
        let dp = DecodedProgram::from_program(&p);
        assert_eq!(dp.len(), p.text.len());
        for (idx, i) in p.text.iter().enumerate() {
            let d = dp.get(idx).unwrap();
            assert_eq!(d.instr, *i);
            assert_eq!(d.fu, i.fu_class());
            assert_eq!(d.int_dst, i.int_dst());
            assert_eq!(d.fp_dst, i.fp_dst());
            assert_eq!(d.int_srcs, i.int_srcs());
            assert_eq!(d.fp_srcs, i.fp_srcs());
            assert_eq!(d.rel_target, i.rel_target());
            assert_eq!(d.is_load(), i.is_load());
            assert_eq!(d.is_store(), i.is_store());
            assert_eq!(d.is_mem(), i.is_mem());
            assert_eq!(d.is_cond_branch(), i.is_cond_branch());
            assert_eq!(d.is_control(), i.is_control());
            assert_eq!(d.is_syscall(), matches!(i, Instr::Syscall { .. }));
        }
    }

    #[test]
    fn lookup_mirrors_text_index() {
        let p = sample_program();
        let dp = DecodedProgram::from_program(&p);
        // In-range, aligned PCs hit; everything else misses exactly like
        // Program::text_index.
        for pc in [0u64, TEXT_BASE - 8, TEXT_BASE, TEXT_BASE + 8, TEXT_BASE + 3, TEXT_BASE + 4096] {
            match p.text_index(pc) {
                Some(idx) => {
                    let d = dp.lookup(pc).expect("in-text pc must hit the table");
                    assert_eq!(d.instr, p.text[idx]);
                }
                None => assert!(dp.lookup(pc).is_none(), "pc {pc:#x} should miss"),
            }
        }
    }

    #[test]
    fn from_words_round_trips_encoded_text() {
        let p = sample_program();
        let dp = DecodedProgram::from_words(p.text.iter().map(encode));
        assert_eq!(dp.len(), p.text.len());
        for (idx, i) in p.text.iter().enumerate() {
            assert_eq!(dp.get(idx).unwrap().instr, *i);
        }
    }

    #[test]
    fn from_words_stops_at_first_undecodable_word() {
        let p = sample_program();
        let mut words: Vec<u64> = p.text.iter().map(encode).collect();
        words.insert(2, u64::MAX); // not a valid encoding
        let dp = DecodedProgram::from_words(words);
        assert_eq!(dp.len(), 2);
    }
}
