//! Superblock fusion over the predecoded text table.
//!
//! [`DecodedProgram`] (see [`crate::decoded`]) already folds operand/class
//! derivation into load time, but the executors still dispatch one
//! [`crate::Instr`] at a time through a general effects structure. This
//! module takes the next step in the processor-based-emulation spirit:
//! compile the text segment **once** into a flat table of [`Uop`]s —
//! a threaded-code form with operand register numbers, immediates, and
//! absolute branch targets fully pre-resolved — and precompute, for every
//! instruction, the length of the maximal straight-line *run* that starts
//! there.
//!
//! A **superblock** is such a run: it is branch-anchored (every entry
//! point starts a block, including back-edges into the interior of a
//! longer block — the `run_len` table makes every pc a valid entry), ends
//! *with* its terminating control transfer, and is cut short by syscalls
//! (which serialize through the host), by any instruction the fuser
//! refuses ([`Uop::Other`]), and by [`MAX_BLOCK_LEN`]. Dispatchers execute
//! a run's uops back to back on the fast path — no per-instruction table
//! lookup, no `Option`-driven operand gathering — and fall back to the
//! existing per-instruction model at block exits, cache misses, syscalls
//! and PCs outside the table (bad-fetch semantics are preserved by the
//! fall-back, exactly as for the predecode table).
//!
//! The table is purely architectural and static: it never changes after
//! [`SuperblockTable::build`], so it is shared read-only across core
//! threads and is *rebuilt* (never serialized) on snapshot resume, like
//! the predecode table it mirrors.

use crate::decoded::DecodedProgram;
use crate::instr::{FuClass, Instr};
use crate::layout::TEXT_BASE;
use crate::WORD_BYTES;

/// Fusion stops after this many instructions; longer straight-line code
/// chains into consecutive blocks. Keeps a block comfortably inside any
/// scheme's run-ahead batch cap so window-edge splits stay rare.
pub const MAX_BLOCK_LEN: u16 = 64;

/// Integer register-register ALU operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[allow(missing_docs)] // 1:1 with the like-named `Instr` variants
pub enum AluRROp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    And,
    Or,
    Xor,
    Sll,
    Srl,
    Sra,
    Slt,
    Sltu,
}

impl AluRROp {
    /// Architectural result, bit-identical to [`Instr`] execution.
    #[inline]
    pub fn eval(self, a: u64, b: u64) -> u64 {
        match self {
            AluRROp::Add => a.wrapping_add(b),
            AluRROp::Sub => a.wrapping_sub(b),
            AluRROp::Mul => a.wrapping_mul(b),
            AluRROp::Div => {
                let (x, y) = (a as i64, b as i64);
                if y == 0 {
                    u64::MAX
                } else {
                    x.wrapping_div(y) as u64
                }
            }
            AluRROp::Rem => {
                let (x, y) = (a as i64, b as i64);
                if y == 0 {
                    a
                } else {
                    x.wrapping_rem(y) as u64
                }
            }
            AluRROp::And => a & b,
            AluRROp::Or => a | b,
            AluRROp::Xor => a ^ b,
            AluRROp::Sll => a.wrapping_shl(b as u32 & 63),
            AluRROp::Srl => a.wrapping_shr(b as u32 & 63),
            AluRROp::Sra => ((a as i64).wrapping_shr(b as u32 & 63)) as u64,
            AluRROp::Slt => ((a as i64) < (b as i64)) as u64,
            AluRROp::Sltu => (a < b) as u64,
        }
    }

    /// Functional-unit class (for the timing models).
    #[inline]
    pub fn fu(self) -> FuClass {
        match self {
            AluRROp::Mul => FuClass::IntMul,
            AluRROp::Div | AluRROp::Rem => FuClass::IntDiv,
            _ => FuClass::IntAlu,
        }
    }
}

/// Integer register-immediate ALU operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum AluRIOp {
    Addi,
    Andi,
    Ori,
    Xori,
    Slli,
    Srli,
    Srai,
    Slti,
    Addih,
}

impl AluRIOp {
    /// Architectural result, bit-identical to [`Instr`] execution.
    #[inline]
    pub fn eval(self, a: u64, imm: i32) -> u64 {
        match self {
            AluRIOp::Addi => a.wrapping_add(imm as i64 as u64),
            AluRIOp::Andi => a & (imm as i64 as u64),
            AluRIOp::Ori => a | (imm as i64 as u64),
            AluRIOp::Xori => a ^ (imm as i64 as u64),
            AluRIOp::Slli => a.wrapping_shl(imm as u32 & 63),
            AluRIOp::Srli => a.wrapping_shr(imm as u32 & 63),
            AluRIOp::Srai => ((a as i64).wrapping_shr(imm as u32 & 63)) as u64,
            AluRIOp::Slti => ((a as i64) < (imm as i64)) as u64,
            AluRIOp::Addih => a.wrapping_add(((imm as i64) << 32) as u64),
        }
    }
}

/// Conditional-branch predicate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum BrCond {
    Eq,
    Ne,
    Lt,
    Ge,
    Ltu,
    Geu,
}

impl BrCond {
    /// Branch direction for operand values `a`, `b`.
    #[inline]
    pub fn taken(self, a: u64, b: u64) -> bool {
        match self {
            BrCond::Eq => a == b,
            BrCond::Ne => a != b,
            BrCond::Lt => (a as i64) < (b as i64),
            BrCond::Ge => (a as i64) >= (b as i64),
            BrCond::Ltu => a < b,
            BrCond::Geu => a >= b,
        }
    }
}

/// Two-source floating-point operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum FpBinOp {
    Fadd,
    Fsub,
    Fmul,
    Fdiv,
    Fmin,
    Fmax,
}

impl FpBinOp {
    /// Architectural result, bit-identical to [`Instr`] execution.
    #[inline]
    pub fn eval(self, a: f64, b: f64) -> f64 {
        match self {
            FpBinOp::Fadd => a + b,
            FpBinOp::Fsub => a - b,
            FpBinOp::Fmul => a * b,
            FpBinOp::Fdiv => a / b,
            FpBinOp::Fmin => a.min(b),
            FpBinOp::Fmax => a.max(b),
        }
    }

    /// Functional-unit class (for the timing models).
    #[inline]
    pub fn fu(self) -> FuClass {
        match self {
            FpBinOp::Fmul => FuClass::FpMul,
            FpBinOp::Fdiv => FuClass::FpDiv,
            _ => FuClass::FpAdd,
        }
    }
}

/// Single-source floating-point operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum FpUnOp {
    Fsqrt,
    Fneg,
    Fabs,
}

impl FpUnOp {
    /// Architectural result, bit-identical to [`Instr`] execution.
    #[inline]
    pub fn eval(self, a: f64) -> f64 {
        match self {
            FpUnOp::Fsqrt => a.sqrt(),
            FpUnOp::Fneg => -a,
            FpUnOp::Fabs => a.abs(),
        }
    }

    /// Functional-unit class (for the timing models).
    #[inline]
    pub fn fu(self) -> FuClass {
        match self {
            FpUnOp::Fsqrt => FuClass::FpSqrt,
            _ => FuClass::FpAdd,
        }
    }
}

/// Floating-point compare writing an integer register.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum FpCmpOp {
    Feq,
    Flt,
    Fle,
}

impl FpCmpOp {
    /// Architectural result (0/1), bit-identical to [`Instr`] execution.
    #[inline]
    pub fn eval(self, a: f64, b: f64) -> u64 {
        match self {
            FpCmpOp::Feq => (a == b) as u64,
            FpCmpOp::Flt => (a < b) as u64,
            FpCmpOp::Fle => (a <= b) as u64,
        }
    }
}

/// One threaded-code micro-op: an [`Instr`] with register numbers
/// flattened to raw indices and direct branch targets resolved to
/// absolute PCs at compile time. Destination index 0 encodes the
/// hardwired-zero register; executors must discard those writes.
#[derive(Clone, Copy, Debug, PartialEq)]
#[allow(missing_docs)] // operand fields follow the `Instr` naming
pub enum Uop {
    AluRR {
        op: AluRROp,
        rd: u8,
        rs1: u8,
        rs2: u8,
    },
    AluRI {
        op: AluRIOp,
        rd: u8,
        rs1: u8,
        imm: i32,
    },
    Li {
        rd: u8,
        imm: i32,
    },
    /// `rd = mem[(rs1 + imm) & !7]`.
    Ld {
        rd: u8,
        rs1: u8,
        imm: i32,
    },
    /// `fd = mem[(rs1 + imm) & !7]` (bit pattern).
    Fld {
        fd: u8,
        rs1: u8,
        imm: i32,
    },
    /// `mem[(rs1 + imm) & !7] = rs2`.
    St {
        rs2: u8,
        rs1: u8,
        imm: i32,
    },
    /// `mem[(rs1 + imm) & !7] = fs` (bit pattern).
    Fst {
        fs: u8,
        rs1: u8,
        imm: i32,
    },
    /// Conditional branch; `target` is the absolute taken PC.
    Br {
        cond: BrCond,
        rs1: u8,
        rs2: u8,
        target: u64,
    },
    J {
        target: u64,
    },
    /// `rd = pc + 8`, then jump to `target`.
    Jal {
        rd: u8,
        target: u64,
    },
    /// `rd = pc + 8; pc = (rs1 + imm) & !7`.
    Jalr {
        rd: u8,
        rs1: u8,
        imm: i32,
    },
    FpBin {
        op: FpBinOp,
        fd: u8,
        fs1: u8,
        fs2: u8,
    },
    FpUn {
        op: FpUnOp,
        fd: u8,
        fs1: u8,
    },
    FpCmp {
        op: FpCmpOp,
        rd: u8,
        fs1: u8,
        fs2: u8,
    },
    Fcvtlf {
        fd: u8,
        rs1: u8,
    },
    Fcvtfl {
        rd: u8,
        fs1: u8,
    },
    Fmvxf {
        rd: u8,
        fs1: u8,
    },
    Fmvfx {
        fd: u8,
        rs1: u8,
    },
    Nop,
    /// The fuser refused this instruction (syscalls, and anything a
    /// future ISA extension adds before it is taught here). Dispatchers
    /// must fall back to the per-instruction model.
    Other,
}

/// Absolute taken-target of a direct branch at `pc` with instruction
/// offset `off` (mirrors the executor's `rel_target`).
#[inline]
fn branch_target(pc: u64, off: i32) -> u64 {
    pc.wrapping_add(WORD_BYTES).wrapping_add((off as i64).wrapping_mul(WORD_BYTES as i64) as u64)
}

impl Uop {
    /// Compile one instruction sitting at absolute `pc`.
    pub fn compile(i: &Instr, pc: u64) -> Self {
        use Instr::*;
        let rr = |op: AluRROp, rd: crate::Reg, rs1: crate::Reg, rs2: crate::Reg| Uop::AluRR {
            op,
            rd: rd.0,
            rs1: rs1.0,
            rs2: rs2.0,
        };
        let ri = |op: AluRIOp, rd: crate::Reg, rs1: crate::Reg, imm: i32| Uop::AluRI {
            op,
            rd: rd.0,
            rs1: rs1.0,
            imm,
        };
        let br = |cond: BrCond, rs1: crate::Reg, rs2: crate::Reg, off: i32| Uop::Br {
            cond,
            rs1: rs1.0,
            rs2: rs2.0,
            target: branch_target(pc, off),
        };
        match *i {
            Add { rd, rs1, rs2 } => rr(AluRROp::Add, rd, rs1, rs2),
            Sub { rd, rs1, rs2 } => rr(AluRROp::Sub, rd, rs1, rs2),
            Mul { rd, rs1, rs2 } => rr(AluRROp::Mul, rd, rs1, rs2),
            Div { rd, rs1, rs2 } => rr(AluRROp::Div, rd, rs1, rs2),
            Rem { rd, rs1, rs2 } => rr(AluRROp::Rem, rd, rs1, rs2),
            And { rd, rs1, rs2 } => rr(AluRROp::And, rd, rs1, rs2),
            Or { rd, rs1, rs2 } => rr(AluRROp::Or, rd, rs1, rs2),
            Xor { rd, rs1, rs2 } => rr(AluRROp::Xor, rd, rs1, rs2),
            Sll { rd, rs1, rs2 } => rr(AluRROp::Sll, rd, rs1, rs2),
            Srl { rd, rs1, rs2 } => rr(AluRROp::Srl, rd, rs1, rs2),
            Sra { rd, rs1, rs2 } => rr(AluRROp::Sra, rd, rs1, rs2),
            Slt { rd, rs1, rs2 } => rr(AluRROp::Slt, rd, rs1, rs2),
            Sltu { rd, rs1, rs2 } => rr(AluRROp::Sltu, rd, rs1, rs2),
            Addi { rd, rs1, imm } => ri(AluRIOp::Addi, rd, rs1, imm),
            Andi { rd, rs1, imm } => ri(AluRIOp::Andi, rd, rs1, imm),
            Ori { rd, rs1, imm } => ri(AluRIOp::Ori, rd, rs1, imm),
            Xori { rd, rs1, imm } => ri(AluRIOp::Xori, rd, rs1, imm),
            Slli { rd, rs1, imm } => ri(AluRIOp::Slli, rd, rs1, imm),
            Srli { rd, rs1, imm } => ri(AluRIOp::Srli, rd, rs1, imm),
            Srai { rd, rs1, imm } => ri(AluRIOp::Srai, rd, rs1, imm),
            Slti { rd, rs1, imm } => ri(AluRIOp::Slti, rd, rs1, imm),
            Addih { rd, rs1, imm } => ri(AluRIOp::Addih, rd, rs1, imm),
            Li { rd, imm } => Uop::Li { rd: rd.0, imm },
            Ld { rd, rs1, imm } => Uop::Ld { rd: rd.0, rs1: rs1.0, imm },
            Fld { fd, rs1, imm } => Uop::Fld { fd: fd.0, rs1: rs1.0, imm },
            St { rs2, rs1, imm } => Uop::St { rs2: rs2.0, rs1: rs1.0, imm },
            Fst { fs, rs1, imm } => Uop::Fst { fs: fs.0, rs1: rs1.0, imm },
            Beq { rs1, rs2, off } => br(BrCond::Eq, rs1, rs2, off),
            Bne { rs1, rs2, off } => br(BrCond::Ne, rs1, rs2, off),
            Blt { rs1, rs2, off } => br(BrCond::Lt, rs1, rs2, off),
            Bge { rs1, rs2, off } => br(BrCond::Ge, rs1, rs2, off),
            Bltu { rs1, rs2, off } => br(BrCond::Ltu, rs1, rs2, off),
            Bgeu { rs1, rs2, off } => br(BrCond::Geu, rs1, rs2, off),
            J { off } => Uop::J { target: branch_target(pc, off) },
            Jal { rd, off } => Uop::Jal { rd: rd.0, target: branch_target(pc, off) },
            Jalr { rd, rs1, imm } => Uop::Jalr { rd: rd.0, rs1: rs1.0, imm },
            Fadd { fd, fs1, fs2 } => {
                Uop::FpBin { op: FpBinOp::Fadd, fd: fd.0, fs1: fs1.0, fs2: fs2.0 }
            }
            Fsub { fd, fs1, fs2 } => {
                Uop::FpBin { op: FpBinOp::Fsub, fd: fd.0, fs1: fs1.0, fs2: fs2.0 }
            }
            Fmul { fd, fs1, fs2 } => {
                Uop::FpBin { op: FpBinOp::Fmul, fd: fd.0, fs1: fs1.0, fs2: fs2.0 }
            }
            Fdiv { fd, fs1, fs2 } => {
                Uop::FpBin { op: FpBinOp::Fdiv, fd: fd.0, fs1: fs1.0, fs2: fs2.0 }
            }
            Fmin { fd, fs1, fs2 } => {
                Uop::FpBin { op: FpBinOp::Fmin, fd: fd.0, fs1: fs1.0, fs2: fs2.0 }
            }
            Fmax { fd, fs1, fs2 } => {
                Uop::FpBin { op: FpBinOp::Fmax, fd: fd.0, fs1: fs1.0, fs2: fs2.0 }
            }
            Fsqrt { fd, fs1 } => Uop::FpUn { op: FpUnOp::Fsqrt, fd: fd.0, fs1: fs1.0 },
            Fneg { fd, fs1 } => Uop::FpUn { op: FpUnOp::Fneg, fd: fd.0, fs1: fs1.0 },
            Fabs { fd, fs1 } => Uop::FpUn { op: FpUnOp::Fabs, fd: fd.0, fs1: fs1.0 },
            Feq { rd, fs1, fs2 } => {
                Uop::FpCmp { op: FpCmpOp::Feq, rd: rd.0, fs1: fs1.0, fs2: fs2.0 }
            }
            Flt { rd, fs1, fs2 } => {
                Uop::FpCmp { op: FpCmpOp::Flt, rd: rd.0, fs1: fs1.0, fs2: fs2.0 }
            }
            Fle { rd, fs1, fs2 } => {
                Uop::FpCmp { op: FpCmpOp::Fle, rd: rd.0, fs1: fs1.0, fs2: fs2.0 }
            }
            Fcvtlf { fd, rs1 } => Uop::Fcvtlf { fd: fd.0, rs1: rs1.0 },
            Fcvtfl { rd, fs1 } => Uop::Fcvtfl { rd: rd.0, fs1: fs1.0 },
            Fmvxf { rd, fs1 } => Uop::Fmvxf { rd: rd.0, fs1: fs1.0 },
            Fmvfx { fd, rs1 } => Uop::Fmvfx { fd: fd.0, rs1: rs1.0 },
            Syscall { .. } => Uop::Other,
            Nop => Uop::Nop,
        }
    }

    /// Control transfer (ends a run, with a resolved next PC)?
    #[inline]
    pub fn is_control(&self) -> bool {
        matches!(self, Uop::Br { .. } | Uop::J { .. } | Uop::Jal { .. } | Uop::Jalr { .. })
    }

    /// Memory access?
    #[inline]
    pub fn is_mem(&self) -> bool {
        matches!(self, Uop::Ld { .. } | Uop::Fld { .. } | Uop::St { .. } | Uop::Fst { .. })
    }

    /// Functional-unit class, identical to the source instruction's (the
    /// timing models key execution latency off this).
    #[inline]
    pub fn fu(&self) -> FuClass {
        match self {
            Uop::AluRR { op, .. } => op.fu(),
            Uop::AluRI { .. } | Uop::Li { .. } => FuClass::IntAlu,
            Uop::Ld { .. } | Uop::Fld { .. } => FuClass::Load,
            Uop::St { .. } | Uop::Fst { .. } => FuClass::Store,
            Uop::Br { .. } => FuClass::Branch,
            Uop::J { .. } | Uop::Jal { .. } | Uop::Jalr { .. } => FuClass::Jump,
            Uop::FpBin { op, .. } => op.fu(),
            Uop::FpUn { op, .. } => op.fu(),
            Uop::FpCmp { .. }
            | Uop::Fcvtlf { .. }
            | Uop::Fcvtfl { .. }
            | Uop::Fmvxf { .. }
            | Uop::Fmvfx { .. } => FuClass::FpAdd,
            Uop::Nop => FuClass::Nop,
            Uop::Other => FuClass::Syscall,
        }
    }
}

/// Flat superblock view of a program's text segment.
///
/// `uops[idx]` is the compiled form of the instruction at text index
/// `idx`; `run_len[idx]` is the number of uops (1..=[`MAX_BLOCK_LEN`]) a
/// dispatcher entering at `idx` may execute back to back, where only the
/// *last* uop of a run can be a control transfer and refused uops
/// ([`Uop::Other`]) have run length 0. Because the run length is stored
/// per instruction, every pc is a valid block entry — a back-edge into
/// the interior of a longer block simply starts a (shorter) block there.
#[derive(Debug, Default)]
pub struct SuperblockTable {
    uops: Vec<Uop>,
    run_len: Vec<u16>,
    blocks_formed: u64,
}

impl SuperblockTable {
    /// Compile a predecoded program into superblock form.
    pub fn build(p: &DecodedProgram) -> Self {
        let n = p.len();
        let mut uops = Vec::with_capacity(n);
        for idx in 0..n {
            let pc = TEXT_BASE + idx as u64 * WORD_BYTES;
            uops.push(Uop::compile(&p.get(idx).expect("idx < len").instr, pc));
        }
        // One backward pass: a control uop terminates its own run; a
        // refused uop has no run; everything else extends the successor's
        // run, clamped at the block cap.
        let mut run_len = vec![0u16; n];
        for idx in (0..n).rev() {
            run_len[idx] = match &uops[idx] {
                Uop::Other => 0,
                u if u.is_control() => 1,
                _ => {
                    let next = if idx + 1 < n { run_len[idx + 1] } else { 0 };
                    (1 + next).min(MAX_BLOCK_LEN)
                }
            };
        }
        // Formation census: an anchor is an entry pc no straight-line
        // predecessor flows into (start of text, after a refused uop, or
        // after a control transfer). Back-edge entries into interiors are
        // dynamic and not counted here.
        let mut blocks_formed = 0u64;
        for idx in 0..n {
            if run_len[idx] == 0 {
                continue;
            }
            if idx == 0 || run_len[idx - 1] == 0 || uops[idx - 1].is_control() {
                blocks_formed += 1;
            }
        }
        SuperblockTable { uops, run_len, blocks_formed }
    }

    /// Number of compiled uops (== text length).
    #[inline]
    pub fn len(&self) -> usize {
        self.uops.len()
    }

    /// True when the text segment is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.uops.is_empty()
    }

    /// The full uop table (parallel to the predecode table).
    #[inline]
    pub fn uops(&self) -> &[Uop] {
        &self.uops
    }

    /// Uop at text index `idx` (callers obtain valid indices from
    /// [`SuperblockTable::lookup`]).
    #[inline]
    pub fn uop(&self, idx: usize) -> &Uop {
        &self.uops[idx]
    }

    /// `(text index, run length)` for entry pc `pc`, or `None` when `pc`
    /// lies outside the text segment or is misaligned (mirrors
    /// [`DecodedProgram::lookup`]). A run length of 0 means the pc holds
    /// a refused uop: the dispatcher must take the per-instruction path.
    #[inline]
    pub fn lookup(&self, pc: u64) -> Option<(usize, u16)> {
        if pc < TEXT_BASE || !pc.is_multiple_of(WORD_BYTES) {
            return None;
        }
        let idx = ((pc - TEXT_BASE) / WORD_BYTES) as usize;
        self.run_len.get(idx).map(|&l| (idx, l))
    }

    /// Number of maximal blocks the fuser formed (static census over the
    /// text; dynamic back-edge entries are not counted).
    #[inline]
    pub fn blocks_formed(&self) -> u64 {
        self.blocks_formed
    }

    /// Run length at text index `idx`.
    #[inline]
    pub fn run_len_at(&self, idx: usize) -> u16 {
        self.run_len[idx]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::reg::{FReg, Reg};
    use crate::syscall::Syscall;

    fn table(b: ProgramBuilder) -> SuperblockTable {
        let p = b.build().expect("program builds");
        SuperblockTable::build(&DecodedProgram::from_program(&p))
    }

    #[test]
    fn runs_end_with_control_and_stop_at_syscalls() {
        let mut b = ProgramBuilder::new();
        let top = b.here("top");
        b.addi(Reg::new(5), Reg::new(5), 1); // idx 0
        b.add(Reg::new(6), Reg::new(5), Reg::new(5)); // idx 1
        b.bne(Reg::new(5), Reg::ZERO, top); // idx 2 (control)
        b.sys(Syscall::Exit); // idx 3 (refused)
        let t = table(b);
        assert_eq!(t.run_len_at(0), 3, "run includes its terminating branch");
        assert_eq!(t.run_len_at(1), 2, "interior pcs are valid entries");
        assert_eq!(t.run_len_at(2), 1, "a control uop is a run of one");
        assert_eq!(t.run_len_at(3), 0, "syscalls are refused");
        assert_eq!(t.blocks_formed(), 1);
    }

    #[test]
    fn straight_line_runs_clamp_at_the_cap() {
        let mut b = ProgramBuilder::new();
        for _ in 0..(MAX_BLOCK_LEN as usize * 2) {
            b.addi(Reg::new(5), Reg::new(5), 1);
        }
        b.sys(Syscall::Exit);
        let t = table(b);
        assert_eq!(t.run_len_at(0), MAX_BLOCK_LEN);
        assert_eq!(t.run_len_at(MAX_BLOCK_LEN as usize * 2 - 1), 1);
        // Two chained maximal blocks (cap does not split the census; the
        // anchor rule does): only the start of text anchors here.
        assert_eq!(t.blocks_formed(), 1);
    }

    #[test]
    fn branch_targets_resolve_to_absolute_pcs() {
        let mut b = ProgramBuilder::new();
        let skip = b.new_label("skip");
        b.beq(Reg::new(5), Reg::new(6), skip); // idx 0
        b.addi(Reg::new(7), Reg::new(7), 13); // idx 1
        b.bind(skip);
        b.sys(Syscall::Exit); // idx 2
        let t = table(b);
        match *t.uop(0) {
            Uop::Br { cond: BrCond::Eq, target, .. } => {
                assert_eq!(target, TEXT_BASE + 2 * WORD_BYTES);
            }
            ref u => panic!("expected Br, got {u:?}"),
        }
    }

    #[test]
    fn lookup_mirrors_the_predecode_table() {
        let mut b = ProgramBuilder::new();
        b.nop();
        b.sys(Syscall::Exit);
        let t = table(b);
        assert!(t.lookup(0).is_none());
        assert!(t.lookup(TEXT_BASE + 3).is_none(), "misaligned pc misses");
        assert_eq!(t.lookup(TEXT_BASE).map(|(i, _)| i), Some(0));
        assert!(t.lookup(TEXT_BASE + 64 * WORD_BYTES).is_none(), "past text misses");
    }

    #[test]
    fn every_instr_kind_compiles_to_a_real_uop_except_syscall() {
        let mut b = ProgramBuilder::new();
        b.add(Reg::new(5), Reg::new(6), Reg::new(7));
        b.fld(FReg::new(1), Reg::new(5), 8);
        b.fadd(FReg::new(2), FReg::new(1), FReg::new(1));
        b.emit(crate::Instr::Fcvtfl { rd: Reg::new(8), fs1: FReg::new(2) });
        b.emit(crate::Instr::Jalr { rd: Reg::RA, rs1: Reg::new(8), imm: 0 });
        b.sys(Syscall::Exit);
        let t = table(b);
        for idx in 0..t.len() - 1 {
            assert_ne!(*t.uop(idx), Uop::Other, "uop {idx} should compile");
        }
        assert_eq!(*t.uop(t.len() - 1), Uop::Other);
    }

    #[test]
    fn fu_classes_match_the_source_instructions() {
        let mut b = ProgramBuilder::new();
        let top = b.here("top");
        b.mul(Reg::new(5), Reg::new(6), Reg::new(7));
        b.fmul(FReg::new(1), FReg::new(2), FReg::new(3));
        b.fsqrt(FReg::new(1), FReg::new(2));
        b.ld(Reg::new(5), Reg::new(6), 0);
        b.st(Reg::new(5), Reg::new(6), 0);
        b.j(top);
        b.sys(Syscall::Exit);
        let p = b.build().expect("program builds");
        let dp = DecodedProgram::from_program(&p);
        let t = SuperblockTable::build(&dp);
        for idx in 0..t.len() {
            assert_eq!(t.uop(idx).fu(), dp.get(idx).unwrap().fu, "idx {idx}");
        }
    }
}
