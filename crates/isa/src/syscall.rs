//! Syscall numbers for services emulated *outside* the simulator.
//!
//! SlackSim inherited SimpleScalar's strategy of emulating system functions
//! outside the simulated machine, and implemented the Pthread-style workload
//! API of the paper's Table 1 the same way ("no new instructions were added
//! to the PISA instruction set to support our APIs"). We reproduce that: the
//! API below is invoked through the single `syscall` instruction and handled
//! functionally by the runtime in `sk-core`.
//!
//! Calling convention: the code is the instruction immediate; arguments are
//! read from `a0..a3` and a result, if any, is written to `a0`.

/// Identifiers for the emulated services.
///
/// The sync-object ids passed in `a0` index per-simulation tables of locks,
/// barriers and semaphores (`sk-core::sync`), matching Table 1 of the paper:
/// `init_lock/lock/unlock`, `init_barrier/barrier`,
/// `init_sema/sema_wait/sema_signal`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u16)]
pub enum Syscall {
    /// Terminate this workload thread. `a0` = exit code.
    Exit = 0,
    /// Print the integer in `a0` (host-side stdout, for debugging).
    PrintInt = 1,
    /// Print the f64 whose bits are in `a0`.
    PrintFloat = 2,
    /// Write this thread's id (0-based) to `a0`.
    GetTid = 3,
    /// Write the number of target cores to `a0`.
    GetNcores = 4,
    /// Spawn a workload thread on a free core: `a0` = entry PC, `a1` =
    /// argument (delivered in the child's `a0`). Returns child tid in `a0`,
    /// or -1 if no core is free.
    Spawn = 5,
    /// Read the core's current local cycle into `a0` (for self-timing).
    ReadCycle = 6,

    /// Initialize lock `a0`.
    InitLock = 10,
    /// Acquire lock `a0`; retries (spinning in simulated time) until held.
    Lock = 11,
    /// Release lock `a0`.
    Unlock = 12,
    /// Initialize barrier `a0` for `a1` participants.
    InitBarrier = 13,
    /// Wait on barrier `a0`.
    Barrier = 14,
    /// Initialize semaphore `a0` with count `a1`.
    InitSema = 15,
    /// P operation on semaphore `a0`.
    SemaWait = 16,
    /// V operation on semaphore `a0`.
    SemaSignal = 17,
    /// Atomic compare-and-swap on the word at address `a0`: if it equals
    /// `a1`, store `a2`. Returns the observed (pre-swap) value in `a0`.
    /// Like the Table 1 sync API, the operation is emulated outside the
    /// simulated machine and routed through the manager thread, so the
    /// order of contended CAS winners is governed by the active slack
    /// scheme — deterministic under cycle-by-cycle, arrival-ordered under
    /// slack (`Cas(a, x, x)` is the idiomatic scheme-ordered read).
    Cas = 18,

    /// Begin the region of interest: reset statistics (the paper starts
    /// collecting after all workload threads are created).
    RoiBegin = 20,
    /// End the region of interest: freeze statistics.
    RoiEnd = 21,
}

impl Syscall {
    /// Decode a syscall code from an instruction immediate.
    pub fn from_code(code: u16) -> Option<Syscall> {
        use Syscall::*;
        Some(match code {
            0 => Exit,
            1 => PrintInt,
            2 => PrintFloat,
            3 => GetTid,
            4 => GetNcores,
            5 => Spawn,
            6 => ReadCycle,
            10 => InitLock,
            11 => Lock,
            12 => Unlock,
            13 => InitBarrier,
            14 => Barrier,
            15 => InitSema,
            16 => SemaWait,
            17 => SemaSignal,
            18 => Cas,
            20 => RoiBegin,
            21 => RoiEnd,
            _ => return None,
        })
    }

    /// The instruction-immediate encoding of this syscall.
    pub fn code(self) -> u16 {
        self as u16
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_round_trip() {
        use Syscall::*;
        for s in [
            Exit,
            PrintInt,
            PrintFloat,
            GetTid,
            GetNcores,
            Spawn,
            ReadCycle,
            InitLock,
            Lock,
            Unlock,
            InitBarrier,
            Barrier,
            InitSema,
            SemaWait,
            SemaSignal,
            Cas,
            RoiBegin,
            RoiEnd,
        ] {
            assert_eq!(Syscall::from_code(s.code()), Some(s));
        }
    }

    #[test]
    fn unknown_codes_are_none() {
        assert_eq!(Syscall::from_code(9), None);
        assert_eq!(Syscall::from_code(19), None);
        assert_eq!(Syscall::from_code(22), None);
        assert_eq!(Syscall::from_code(u16::MAX), None);
    }
}
