//! Binary encoding of instructions.
//!
//! One instruction per 64-bit little-endian word:
//!
//! ```text
//! bits  0..8    opcode
//! bits  8..16   rd  (or fd)
//! bits 16..24   rs1 (or fs1)
//! bits 24..32   rs2 (or fs2 / store source)
//! bits 32..64   imm (i32, also used for branch offsets and syscall codes)
//! ```
//!
//! Every [`Instr`] encodes to exactly one word and decodes back to an equal
//! value (`decode(encode(i)) == i`), which is enforced by property tests.

use crate::instr::Instr;
use crate::reg::{FReg, Reg};
use std::fmt;

/// Error returned by [`decode`] for malformed instruction words.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// The opcode byte does not name an instruction.
    BadOpcode(u8),
    /// A register field exceeded 31.
    BadRegister(u8),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::BadOpcode(op) => write!(f, "unknown opcode byte {op:#04x}"),
            DecodeError::BadRegister(r) => write!(f, "register field {r} out of range"),
        }
    }
}

impl std::error::Error for DecodeError {}

// Opcode space. Stable numbering: changing these breaks saved program images.
// Opcode 0x00 is deliberately invalid so that zero-filled (never-written)
// memory does not decode as a valid instruction — a runaway PC faults.
mod op {
    pub const NOP: u8 = 0x60;
    pub const ADD: u8 = 0x01;
    pub const SUB: u8 = 0x02;
    pub const MUL: u8 = 0x03;
    pub const DIV: u8 = 0x04;
    pub const REM: u8 = 0x05;
    pub const AND: u8 = 0x06;
    pub const OR: u8 = 0x07;
    pub const XOR: u8 = 0x08;
    pub const SLL: u8 = 0x09;
    pub const SRL: u8 = 0x0a;
    pub const SRA: u8 = 0x0b;
    pub const SLT: u8 = 0x0c;
    pub const SLTU: u8 = 0x0d;
    pub const ADDI: u8 = 0x10;
    pub const ANDI: u8 = 0x11;
    pub const ORI: u8 = 0x12;
    pub const XORI: u8 = 0x13;
    pub const SLLI: u8 = 0x14;
    pub const SRLI: u8 = 0x15;
    pub const SRAI: u8 = 0x16;
    pub const SLTI: u8 = 0x17;
    pub const LI: u8 = 0x18;
    pub const ADDIH: u8 = 0x19;
    pub const LD: u8 = 0x20;
    pub const ST: u8 = 0x21;
    pub const FLD: u8 = 0x22;
    pub const FST: u8 = 0x23;
    pub const BEQ: u8 = 0x30;
    pub const BNE: u8 = 0x31;
    pub const BLT: u8 = 0x32;
    pub const BGE: u8 = 0x33;
    pub const BLTU: u8 = 0x34;
    pub const BGEU: u8 = 0x35;
    pub const J: u8 = 0x38;
    pub const JAL: u8 = 0x39;
    pub const JALR: u8 = 0x3a;
    pub const FADD: u8 = 0x40;
    pub const FSUB: u8 = 0x41;
    pub const FMUL: u8 = 0x42;
    pub const FDIV: u8 = 0x43;
    pub const FMIN: u8 = 0x44;
    pub const FMAX: u8 = 0x45;
    pub const FSQRT: u8 = 0x46;
    pub const FNEG: u8 = 0x47;
    pub const FABS: u8 = 0x48;
    pub const FEQ: u8 = 0x49;
    pub const FLT: u8 = 0x4a;
    pub const FLE: u8 = 0x4b;
    pub const FCVTLF: u8 = 0x4c;
    pub const FCVTFL: u8 = 0x4d;
    pub const FMVXF: u8 = 0x4e;
    pub const FMVFX: u8 = 0x4f;
    pub const SYSCALL: u8 = 0x50;
}

#[inline]
fn pack(opcode: u8, rd: u8, rs1: u8, rs2: u8, imm: i32) -> u64 {
    (opcode as u64)
        | ((rd as u64) << 8)
        | ((rs1 as u64) << 16)
        | ((rs2 as u64) << 24)
        | ((imm as u32 as u64) << 32)
}

/// Encode an instruction into its 64-bit memory representation.
pub fn encode(i: &Instr) -> u64 {
    use Instr::*;
    match *i {
        Nop => pack(op::NOP, 0, 0, 0, 0),
        Add { rd, rs1, rs2 } => pack(op::ADD, rd.0, rs1.0, rs2.0, 0),
        Sub { rd, rs1, rs2 } => pack(op::SUB, rd.0, rs1.0, rs2.0, 0),
        Mul { rd, rs1, rs2 } => pack(op::MUL, rd.0, rs1.0, rs2.0, 0),
        Div { rd, rs1, rs2 } => pack(op::DIV, rd.0, rs1.0, rs2.0, 0),
        Rem { rd, rs1, rs2 } => pack(op::REM, rd.0, rs1.0, rs2.0, 0),
        And { rd, rs1, rs2 } => pack(op::AND, rd.0, rs1.0, rs2.0, 0),
        Or { rd, rs1, rs2 } => pack(op::OR, rd.0, rs1.0, rs2.0, 0),
        Xor { rd, rs1, rs2 } => pack(op::XOR, rd.0, rs1.0, rs2.0, 0),
        Sll { rd, rs1, rs2 } => pack(op::SLL, rd.0, rs1.0, rs2.0, 0),
        Srl { rd, rs1, rs2 } => pack(op::SRL, rd.0, rs1.0, rs2.0, 0),
        Sra { rd, rs1, rs2 } => pack(op::SRA, rd.0, rs1.0, rs2.0, 0),
        Slt { rd, rs1, rs2 } => pack(op::SLT, rd.0, rs1.0, rs2.0, 0),
        Sltu { rd, rs1, rs2 } => pack(op::SLTU, rd.0, rs1.0, rs2.0, 0),
        Addi { rd, rs1, imm } => pack(op::ADDI, rd.0, rs1.0, 0, imm),
        Andi { rd, rs1, imm } => pack(op::ANDI, rd.0, rs1.0, 0, imm),
        Ori { rd, rs1, imm } => pack(op::ORI, rd.0, rs1.0, 0, imm),
        Xori { rd, rs1, imm } => pack(op::XORI, rd.0, rs1.0, 0, imm),
        Slli { rd, rs1, imm } => pack(op::SLLI, rd.0, rs1.0, 0, imm),
        Srli { rd, rs1, imm } => pack(op::SRLI, rd.0, rs1.0, 0, imm),
        Srai { rd, rs1, imm } => pack(op::SRAI, rd.0, rs1.0, 0, imm),
        Slti { rd, rs1, imm } => pack(op::SLTI, rd.0, rs1.0, 0, imm),
        Li { rd, imm } => pack(op::LI, rd.0, 0, 0, imm),
        Addih { rd, rs1, imm } => pack(op::ADDIH, rd.0, rs1.0, 0, imm),
        Ld { rd, rs1, imm } => pack(op::LD, rd.0, rs1.0, 0, imm),
        St { rs2, rs1, imm } => pack(op::ST, 0, rs1.0, rs2.0, imm),
        Fld { fd, rs1, imm } => pack(op::FLD, fd.0, rs1.0, 0, imm),
        Fst { fs, rs1, imm } => pack(op::FST, 0, rs1.0, fs.0, imm),
        Beq { rs1, rs2, off } => pack(op::BEQ, 0, rs1.0, rs2.0, off),
        Bne { rs1, rs2, off } => pack(op::BNE, 0, rs1.0, rs2.0, off),
        Blt { rs1, rs2, off } => pack(op::BLT, 0, rs1.0, rs2.0, off),
        Bge { rs1, rs2, off } => pack(op::BGE, 0, rs1.0, rs2.0, off),
        Bltu { rs1, rs2, off } => pack(op::BLTU, 0, rs1.0, rs2.0, off),
        Bgeu { rs1, rs2, off } => pack(op::BGEU, 0, rs1.0, rs2.0, off),
        J { off } => pack(op::J, 0, 0, 0, off),
        Jal { rd, off } => pack(op::JAL, rd.0, 0, 0, off),
        Jalr { rd, rs1, imm } => pack(op::JALR, rd.0, rs1.0, 0, imm),
        Fadd { fd, fs1, fs2 } => pack(op::FADD, fd.0, fs1.0, fs2.0, 0),
        Fsub { fd, fs1, fs2 } => pack(op::FSUB, fd.0, fs1.0, fs2.0, 0),
        Fmul { fd, fs1, fs2 } => pack(op::FMUL, fd.0, fs1.0, fs2.0, 0),
        Fdiv { fd, fs1, fs2 } => pack(op::FDIV, fd.0, fs1.0, fs2.0, 0),
        Fmin { fd, fs1, fs2 } => pack(op::FMIN, fd.0, fs1.0, fs2.0, 0),
        Fmax { fd, fs1, fs2 } => pack(op::FMAX, fd.0, fs1.0, fs2.0, 0),
        Fsqrt { fd, fs1 } => pack(op::FSQRT, fd.0, fs1.0, 0, 0),
        Fneg { fd, fs1 } => pack(op::FNEG, fd.0, fs1.0, 0, 0),
        Fabs { fd, fs1 } => pack(op::FABS, fd.0, fs1.0, 0, 0),
        Feq { rd, fs1, fs2 } => pack(op::FEQ, rd.0, fs1.0, fs2.0, 0),
        Flt { rd, fs1, fs2 } => pack(op::FLT, rd.0, fs1.0, fs2.0, 0),
        Fle { rd, fs1, fs2 } => pack(op::FLE, rd.0, fs1.0, fs2.0, 0),
        Fcvtlf { fd, rs1 } => pack(op::FCVTLF, fd.0, rs1.0, 0, 0),
        Fcvtfl { rd, fs1 } => pack(op::FCVTFL, rd.0, fs1.0, 0, 0),
        Fmvxf { rd, fs1 } => pack(op::FMVXF, rd.0, fs1.0, 0, 0),
        Fmvfx { fd, rs1 } => pack(op::FMVFX, fd.0, rs1.0, 0, 0),
        Syscall { code } => pack(op::SYSCALL, 0, 0, 0, code as i32),
    }
}

/// Decode a 64-bit instruction word.
pub fn decode(word: u64) -> Result<Instr, DecodeError> {
    let opcode = (word & 0xff) as u8;
    let rd_b = ((word >> 8) & 0xff) as u8;
    let rs1_b = ((word >> 16) & 0xff) as u8;
    let rs2_b = ((word >> 24) & 0xff) as u8;
    let imm = (word >> 32) as u32 as i32;

    let reg = |b: u8| -> Result<Reg, DecodeError> {
        if b < 32 {
            Ok(Reg(b))
        } else {
            Err(DecodeError::BadRegister(b))
        }
    };
    let freg = |b: u8| -> Result<FReg, DecodeError> {
        if b < 32 {
            Ok(FReg(b))
        } else {
            Err(DecodeError::BadRegister(b))
        }
    };

    use Instr::*;
    let i = match opcode {
        op::NOP => Nop,
        op::ADD => Add { rd: reg(rd_b)?, rs1: reg(rs1_b)?, rs2: reg(rs2_b)? },
        op::SUB => Sub { rd: reg(rd_b)?, rs1: reg(rs1_b)?, rs2: reg(rs2_b)? },
        op::MUL => Mul { rd: reg(rd_b)?, rs1: reg(rs1_b)?, rs2: reg(rs2_b)? },
        op::DIV => Div { rd: reg(rd_b)?, rs1: reg(rs1_b)?, rs2: reg(rs2_b)? },
        op::REM => Rem { rd: reg(rd_b)?, rs1: reg(rs1_b)?, rs2: reg(rs2_b)? },
        op::AND => And { rd: reg(rd_b)?, rs1: reg(rs1_b)?, rs2: reg(rs2_b)? },
        op::OR => Or { rd: reg(rd_b)?, rs1: reg(rs1_b)?, rs2: reg(rs2_b)? },
        op::XOR => Xor { rd: reg(rd_b)?, rs1: reg(rs1_b)?, rs2: reg(rs2_b)? },
        op::SLL => Sll { rd: reg(rd_b)?, rs1: reg(rs1_b)?, rs2: reg(rs2_b)? },
        op::SRL => Srl { rd: reg(rd_b)?, rs1: reg(rs1_b)?, rs2: reg(rs2_b)? },
        op::SRA => Sra { rd: reg(rd_b)?, rs1: reg(rs1_b)?, rs2: reg(rs2_b)? },
        op::SLT => Slt { rd: reg(rd_b)?, rs1: reg(rs1_b)?, rs2: reg(rs2_b)? },
        op::SLTU => Sltu { rd: reg(rd_b)?, rs1: reg(rs1_b)?, rs2: reg(rs2_b)? },
        op::ADDI => Addi { rd: reg(rd_b)?, rs1: reg(rs1_b)?, imm },
        op::ANDI => Andi { rd: reg(rd_b)?, rs1: reg(rs1_b)?, imm },
        op::ORI => Ori { rd: reg(rd_b)?, rs1: reg(rs1_b)?, imm },
        op::XORI => Xori { rd: reg(rd_b)?, rs1: reg(rs1_b)?, imm },
        op::SLLI => Slli { rd: reg(rd_b)?, rs1: reg(rs1_b)?, imm },
        op::SRLI => Srli { rd: reg(rd_b)?, rs1: reg(rs1_b)?, imm },
        op::SRAI => Srai { rd: reg(rd_b)?, rs1: reg(rs1_b)?, imm },
        op::SLTI => Slti { rd: reg(rd_b)?, rs1: reg(rs1_b)?, imm },
        op::LI => Li { rd: reg(rd_b)?, imm },
        op::ADDIH => Addih { rd: reg(rd_b)?, rs1: reg(rs1_b)?, imm },
        op::LD => Ld { rd: reg(rd_b)?, rs1: reg(rs1_b)?, imm },
        op::ST => St { rs2: reg(rs2_b)?, rs1: reg(rs1_b)?, imm },
        op::FLD => Fld { fd: freg(rd_b)?, rs1: reg(rs1_b)?, imm },
        op::FST => Fst { fs: freg(rs2_b)?, rs1: reg(rs1_b)?, imm },
        op::BEQ => Beq { rs1: reg(rs1_b)?, rs2: reg(rs2_b)?, off: imm },
        op::BNE => Bne { rs1: reg(rs1_b)?, rs2: reg(rs2_b)?, off: imm },
        op::BLT => Blt { rs1: reg(rs1_b)?, rs2: reg(rs2_b)?, off: imm },
        op::BGE => Bge { rs1: reg(rs1_b)?, rs2: reg(rs2_b)?, off: imm },
        op::BLTU => Bltu { rs1: reg(rs1_b)?, rs2: reg(rs2_b)?, off: imm },
        op::BGEU => Bgeu { rs1: reg(rs1_b)?, rs2: reg(rs2_b)?, off: imm },
        op::J => J { off: imm },
        op::JAL => Jal { rd: reg(rd_b)?, off: imm },
        op::JALR => Jalr { rd: reg(rd_b)?, rs1: reg(rs1_b)?, imm },
        op::FADD => Fadd { fd: freg(rd_b)?, fs1: freg(rs1_b)?, fs2: freg(rs2_b)? },
        op::FSUB => Fsub { fd: freg(rd_b)?, fs1: freg(rs1_b)?, fs2: freg(rs2_b)? },
        op::FMUL => Fmul { fd: freg(rd_b)?, fs1: freg(rs1_b)?, fs2: freg(rs2_b)? },
        op::FDIV => Fdiv { fd: freg(rd_b)?, fs1: freg(rs1_b)?, fs2: freg(rs2_b)? },
        op::FMIN => Fmin { fd: freg(rd_b)?, fs1: freg(rs1_b)?, fs2: freg(rs2_b)? },
        op::FMAX => Fmax { fd: freg(rd_b)?, fs1: freg(rs1_b)?, fs2: freg(rs2_b)? },
        op::FSQRT => Fsqrt { fd: freg(rd_b)?, fs1: freg(rs1_b)? },
        op::FNEG => Fneg { fd: freg(rd_b)?, fs1: freg(rs1_b)? },
        op::FABS => Fabs { fd: freg(rd_b)?, fs1: freg(rs1_b)? },
        op::FEQ => Feq { rd: reg(rd_b)?, fs1: freg(rs1_b)?, fs2: freg(rs2_b)? },
        op::FLT => Flt { rd: reg(rd_b)?, fs1: freg(rs1_b)?, fs2: freg(rs2_b)? },
        op::FLE => Fle { rd: reg(rd_b)?, fs1: freg(rs1_b)?, fs2: freg(rs2_b)? },
        op::FCVTLF => Fcvtlf { fd: freg(rd_b)?, rs1: reg(rs1_b)? },
        op::FCVTFL => Fcvtfl { rd: reg(rd_b)?, fs1: freg(rs1_b)? },
        op::FMVXF => Fmvxf { rd: reg(rd_b)?, fs1: freg(rs1_b)? },
        op::FMVFX => Fmvfx { fd: freg(rd_b)?, rs1: reg(rs1_b)? },
        op::SYSCALL => Syscall { code: imm as u16 },
        other => return Err(DecodeError::BadOpcode(other)),
    };
    Ok(i)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::{FReg, Reg};

    #[test]
    fn encode_is_one_word_per_instruction() {
        let i = Instr::Addi { rd: Reg(5), rs1: Reg(6), imm: -1 };
        let w = encode(&i);
        assert_eq!(decode(w), Ok(i));
        // imm occupies the upper 32 bits
        assert_eq!((w >> 32) as u32, (-1i32) as u32);
    }

    #[test]
    fn bad_opcode_is_rejected() {
        assert_eq!(decode(0xff), Err(DecodeError::BadOpcode(0xff)));
    }

    #[test]
    fn bad_register_is_rejected() {
        // opcode ADD with rd = 40
        let w = 0x01u64 | (40u64 << 8);
        assert_eq!(decode(w), Err(DecodeError::BadRegister(40)));
    }

    #[test]
    fn syscall_code_round_trips() {
        for code in [0u16, 1, 17, u16::MAX] {
            let i = Instr::Syscall { code };
            assert_eq!(decode(encode(&i)), Ok(i));
        }
    }

    #[test]
    fn negative_offsets_round_trip() {
        let i = Instr::Beq { rs1: Reg(1), rs2: Reg(2), off: i32::MIN };
        assert_eq!(decode(encode(&i)), Ok(i));
        let i = Instr::Fld { fd: FReg(31), rs1: Reg(31), imm: -8 };
        assert_eq!(decode(encode(&i)), Ok(i));
    }

    #[test]
    fn exhaustive_sample_round_trip() {
        use Instr::*;
        let r1 = Reg(1);
        let r2 = Reg(2);
        let r3 = Reg(3);
        let f1 = FReg(1);
        let f2 = FReg(2);
        let f3 = FReg(3);
        let all = vec![
            Nop,
            Add { rd: r1, rs1: r2, rs2: r3 },
            Sub { rd: r1, rs1: r2, rs2: r3 },
            Mul { rd: r1, rs1: r2, rs2: r3 },
            Div { rd: r1, rs1: r2, rs2: r3 },
            Rem { rd: r1, rs1: r2, rs2: r3 },
            And { rd: r1, rs1: r2, rs2: r3 },
            Or { rd: r1, rs1: r2, rs2: r3 },
            Xor { rd: r1, rs1: r2, rs2: r3 },
            Sll { rd: r1, rs1: r2, rs2: r3 },
            Srl { rd: r1, rs1: r2, rs2: r3 },
            Sra { rd: r1, rs1: r2, rs2: r3 },
            Slt { rd: r1, rs1: r2, rs2: r3 },
            Sltu { rd: r1, rs1: r2, rs2: r3 },
            Addi { rd: r1, rs1: r2, imm: 7 },
            Andi { rd: r1, rs1: r2, imm: 7 },
            Ori { rd: r1, rs1: r2, imm: 7 },
            Xori { rd: r1, rs1: r2, imm: 7 },
            Slli { rd: r1, rs1: r2, imm: 7 },
            Srli { rd: r1, rs1: r2, imm: 7 },
            Srai { rd: r1, rs1: r2, imm: 7 },
            Slti { rd: r1, rs1: r2, imm: 7 },
            Li { rd: r1, imm: -7 },
            Addih { rd: r1, rs1: r2, imm: 3 },
            Ld { rd: r1, rs1: r2, imm: 8 },
            St { rs2: r3, rs1: r2, imm: 8 },
            Fld { fd: f1, rs1: r2, imm: 8 },
            Fst { fs: f3, rs1: r2, imm: 8 },
            Beq { rs1: r1, rs2: r2, off: -1 },
            Bne { rs1: r1, rs2: r2, off: -1 },
            Blt { rs1: r1, rs2: r2, off: -1 },
            Bge { rs1: r1, rs2: r2, off: -1 },
            Bltu { rs1: r1, rs2: r2, off: -1 },
            Bgeu { rs1: r1, rs2: r2, off: -1 },
            J { off: 5 },
            Jal { rd: r1, off: 5 },
            Jalr { rd: r1, rs1: r2, imm: 0 },
            Fadd { fd: f1, fs1: f2, fs2: f3 },
            Fsub { fd: f1, fs1: f2, fs2: f3 },
            Fmul { fd: f1, fs1: f2, fs2: f3 },
            Fdiv { fd: f1, fs1: f2, fs2: f3 },
            Fmin { fd: f1, fs1: f2, fs2: f3 },
            Fmax { fd: f1, fs1: f2, fs2: f3 },
            Fsqrt { fd: f1, fs1: f2 },
            Fneg { fd: f1, fs1: f2 },
            Fabs { fd: f1, fs1: f2 },
            Feq { rd: r1, fs1: f2, fs2: f3 },
            Flt { rd: r1, fs1: f2, fs2: f3 },
            Fle { rd: r1, fs1: f2, fs2: f3 },
            Fcvtlf { fd: f1, rs1: r2 },
            Fcvtfl { rd: r1, fs1: f2 },
            Fmvxf { rd: r1, fs1: f2 },
            Fmvfx { fd: f1, rs1: r2 },
            Syscall { code: 42 },
        ];
        for i in all {
            assert_eq!(decode(encode(&i)), Ok(i), "{i:?}");
        }
    }
}
