//! # sk-isa — the SlackSim mini ISA
//!
//! SlackSim (Chen, Annavaram, Dubois — ICPP 2009) was built on
//! SimpleScalar/PISA. PISA is not redistributable, so this crate defines a
//! small, clean 64-bit RISC instruction set with equivalent expressive power
//! for the paper's workloads:
//!
//! * 32 integer registers (`r0` hardwired to zero) and 32 IEEE-754 `f64`
//!   floating-point registers;
//! * word-addressed memory: every access moves one aligned 64-bit word
//!   (cache blocks are 8 words / 64 bytes);
//! * one instruction per 64-bit word, with a fully round-trippable binary
//!   encoding ([`encode`](crate::encode())/[`decode`](crate::decode()));
//! * a `syscall` instruction through which the Pthread-style workload API of
//!   the paper's Table 1 (locks, barriers, semaphores, spawn) is emulated
//!   *outside* the simulator, exactly as SlackSim did;
//! * a text assembler ([`asm::assemble`]) and a programmatic
//!   [`builder::ProgramBuilder`] DSL used by the `sk-kernels` crate to write
//!   the SPLASH-2-like benchmarks.
//!
//! The crate is purely architectural: it knows nothing about timing. Timing
//! (out-of-order pipelines, caches, slack schemes) lives in `sk-core` and
//! `sk-mem`.

pub mod asm;
pub mod builder;
pub mod decoded;
pub mod disasm;
pub mod encode;
pub mod instr;
pub mod layout;
pub mod program;
pub mod reg;
pub mod superblock;
pub mod syscall;

pub use builder::ProgramBuilder;
pub use decoded::{DecodedInstr, DecodedProgram};
pub use encode::{decode, encode};
pub use instr::{FuClass, Instr};
pub use program::Program;
pub use reg::{FReg, Reg};
pub use superblock::{SuperblockTable, Uop};
pub use syscall::Syscall;

/// Size of one machine word in bytes. All memory traffic is word-granular.
pub const WORD_BYTES: u64 = 8;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_size_is_eight_bytes() {
        assert_eq!(WORD_BYTES, 8);
    }

    #[test]
    fn public_reexports_are_usable() {
        let i = Instr::Add { rd: Reg::new(1), rs1: Reg::new(2), rs2: Reg::new(3) };
        assert_eq!(decode(encode(&i)).unwrap(), i);
    }
}
