//! The instruction set.
//!
//! Every instruction occupies one 64-bit word in memory and is described by
//! the [`Instr`] enum. The enum is the form the simulator pipelines operate
//! on; the packed binary form lives in [`mod@crate::encode`].
//!
//! Branch and jump offsets are expressed in *instructions* (i.e. words)
//! relative to the instruction following the branch, mirroring classic RISC
//! delay-free relative addressing. Load/store immediates are in *bytes* and
//! must produce 8-byte-aligned effective addresses.

use crate::reg::{FReg, Reg};

/// Functional-unit class of an instruction.
///
/// The timing model in `sk-core` assigns issue ports and latencies per
/// class; the ISA only classifies.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FuClass {
    /// Single-cycle integer ALU operation (also address generation).
    IntAlu,
    /// Pipelined integer multiply.
    IntMul,
    /// Unpipelined integer divide/remainder.
    IntDiv,
    /// Floating-point add/sub/compare/convert/move.
    FpAdd,
    /// Floating-point multiply.
    FpMul,
    /// Floating-point divide.
    FpDiv,
    /// Floating-point square root.
    FpSqrt,
    /// Memory read.
    Load,
    /// Memory write.
    Store,
    /// Conditional branch (resolves in an integer ALU).
    Branch,
    /// Unconditional jump / call / return.
    Jump,
    /// Environment call; serializes the pipeline.
    Syscall,
    /// No operation.
    Nop,
}

/// One architectural instruction.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // operand fields follow a uniform rd/rs1/rs2/imm naming
pub enum Instr {
    // ---- integer register-register ----
    Add {
        rd: Reg,
        rs1: Reg,
        rs2: Reg,
    },
    Sub {
        rd: Reg,
        rs1: Reg,
        rs2: Reg,
    },
    Mul {
        rd: Reg,
        rs1: Reg,
        rs2: Reg,
    },
    /// Signed divide. Division by zero writes all-ones, as in RISC-V.
    Div {
        rd: Reg,
        rs1: Reg,
        rs2: Reg,
    },
    /// Signed remainder. Remainder by zero writes the dividend.
    Rem {
        rd: Reg,
        rs1: Reg,
        rs2: Reg,
    },
    And {
        rd: Reg,
        rs1: Reg,
        rs2: Reg,
    },
    Or {
        rd: Reg,
        rs1: Reg,
        rs2: Reg,
    },
    Xor {
        rd: Reg,
        rs1: Reg,
        rs2: Reg,
    },
    Sll {
        rd: Reg,
        rs1: Reg,
        rs2: Reg,
    },
    Srl {
        rd: Reg,
        rs1: Reg,
        rs2: Reg,
    },
    Sra {
        rd: Reg,
        rs1: Reg,
        rs2: Reg,
    },
    /// Set-less-than, signed.
    Slt {
        rd: Reg,
        rs1: Reg,
        rs2: Reg,
    },
    /// Set-less-than, unsigned.
    Sltu {
        rd: Reg,
        rs1: Reg,
        rs2: Reg,
    },

    // ---- integer register-immediate ----
    Addi {
        rd: Reg,
        rs1: Reg,
        imm: i32,
    },
    Andi {
        rd: Reg,
        rs1: Reg,
        imm: i32,
    },
    Ori {
        rd: Reg,
        rs1: Reg,
        imm: i32,
    },
    Xori {
        rd: Reg,
        rs1: Reg,
        imm: i32,
    },
    Slli {
        rd: Reg,
        rs1: Reg,
        imm: i32,
    },
    Srli {
        rd: Reg,
        rs1: Reg,
        imm: i32,
    },
    Srai {
        rd: Reg,
        rs1: Reg,
        imm: i32,
    },
    Slti {
        rd: Reg,
        rs1: Reg,
        imm: i32,
    },
    /// Load a sign-extended 32-bit immediate into `rd`.
    Li {
        rd: Reg,
        imm: i32,
    },
    /// `rd = rs1 + (imm << 32)`: pairs with [`Instr::Li`] to build 64-bit
    /// constants in two instructions.
    Addih {
        rd: Reg,
        rs1: Reg,
        imm: i32,
    },

    // ---- memory ----
    /// Load word: `rd = mem[rs1 + imm]`.
    Ld {
        rd: Reg,
        rs1: Reg,
        imm: i32,
    },
    /// Store word: `mem[rs1 + imm] = rs2`.
    St {
        rs2: Reg,
        rs1: Reg,
        imm: i32,
    },
    /// Load FP word: `fd = mem[rs1 + imm]` (bit pattern).
    Fld {
        fd: FReg,
        rs1: Reg,
        imm: i32,
    },
    /// Store FP word: `mem[rs1 + imm] = fs` (bit pattern).
    Fst {
        fs: FReg,
        rs1: Reg,
        imm: i32,
    },

    // ---- control flow ----
    Beq {
        rs1: Reg,
        rs2: Reg,
        off: i32,
    },
    Bne {
        rs1: Reg,
        rs2: Reg,
        off: i32,
    },
    Blt {
        rs1: Reg,
        rs2: Reg,
        off: i32,
    },
    Bge {
        rs1: Reg,
        rs2: Reg,
        off: i32,
    },
    Bltu {
        rs1: Reg,
        rs2: Reg,
        off: i32,
    },
    Bgeu {
        rs1: Reg,
        rs2: Reg,
        off: i32,
    },
    /// Unconditional PC-relative jump.
    J {
        off: i32,
    },
    /// Jump-and-link: `rd = pc + 8`, then jump PC-relative.
    Jal {
        rd: Reg,
        off: i32,
    },
    /// Indirect jump-and-link: `rd = pc + 8; pc = rs1 + imm`.
    Jalr {
        rd: Reg,
        rs1: Reg,
        imm: i32,
    },

    // ---- floating point ----
    Fadd {
        fd: FReg,
        fs1: FReg,
        fs2: FReg,
    },
    Fsub {
        fd: FReg,
        fs1: FReg,
        fs2: FReg,
    },
    Fmul {
        fd: FReg,
        fs1: FReg,
        fs2: FReg,
    },
    Fdiv {
        fd: FReg,
        fs1: FReg,
        fs2: FReg,
    },
    Fmin {
        fd: FReg,
        fs1: FReg,
        fs2: FReg,
    },
    Fmax {
        fd: FReg,
        fs1: FReg,
        fs2: FReg,
    },
    Fsqrt {
        fd: FReg,
        fs1: FReg,
    },
    Fneg {
        fd: FReg,
        fs1: FReg,
    },
    Fabs {
        fd: FReg,
        fs1: FReg,
    },
    /// `rd = (fs1 == fs2) ? 1 : 0` (IEEE quiet compare).
    Feq {
        rd: Reg,
        fs1: FReg,
        fs2: FReg,
    },
    /// `rd = (fs1 < fs2) ? 1 : 0`.
    Flt {
        rd: Reg,
        fs1: FReg,
        fs2: FReg,
    },
    /// `rd = (fs1 <= fs2) ? 1 : 0`.
    Fle {
        rd: Reg,
        fs1: FReg,
        fs2: FReg,
    },
    /// Convert signed integer to f64: `fd = rs1 as f64`.
    Fcvtlf {
        fd: FReg,
        rs1: Reg,
    },
    /// Convert f64 to signed integer (truncating): `rd = fs1 as i64`.
    Fcvtfl {
        rd: Reg,
        fs1: FReg,
    },
    /// Move raw bits FP → integer.
    Fmvxf {
        rd: Reg,
        fs1: FReg,
    },
    /// Move raw bits integer → FP.
    Fmvfx {
        fd: FReg,
        rs1: Reg,
    },

    // ---- system ----
    /// Environment call. `code` selects the service (see the
    /// [`syscall`](crate::syscall) module);
    /// operands are passed in `a0..a7` by convention.
    Syscall {
        code: u16,
    },
    Nop,
}

impl Instr {
    /// The functional-unit class this instruction executes on.
    pub fn fu_class(&self) -> FuClass {
        use Instr::*;
        match self {
            Add { .. }
            | Sub { .. }
            | And { .. }
            | Or { .. }
            | Xor { .. }
            | Sll { .. }
            | Srl { .. }
            | Sra { .. }
            | Slt { .. }
            | Sltu { .. }
            | Addi { .. }
            | Andi { .. }
            | Ori { .. }
            | Xori { .. }
            | Slli { .. }
            | Srli { .. }
            | Srai { .. }
            | Slti { .. }
            | Li { .. }
            | Addih { .. } => FuClass::IntAlu,
            Mul { .. } => FuClass::IntMul,
            Div { .. } | Rem { .. } => FuClass::IntDiv,
            Ld { .. } | Fld { .. } => FuClass::Load,
            St { .. } | Fst { .. } => FuClass::Store,
            Beq { .. } | Bne { .. } | Blt { .. } | Bge { .. } | Bltu { .. } | Bgeu { .. } => {
                FuClass::Branch
            }
            J { .. } | Jal { .. } | Jalr { .. } => FuClass::Jump,
            Fadd { .. }
            | Fsub { .. }
            | Fmin { .. }
            | Fmax { .. }
            | Fneg { .. }
            | Fabs { .. }
            | Feq { .. }
            | Flt { .. }
            | Fle { .. }
            | Fcvtlf { .. }
            | Fcvtfl { .. }
            | Fmvxf { .. }
            | Fmvfx { .. } => FuClass::FpAdd,
            Fmul { .. } => FuClass::FpMul,
            Fdiv { .. } => FuClass::FpDiv,
            Fsqrt { .. } => FuClass::FpSqrt,
            Syscall { .. } => FuClass::Syscall,
            Nop => FuClass::Nop,
        }
    }

    /// Destination integer register, if any. Writes to `r0` are reported and
    /// must be discarded by the register file.
    pub fn int_dst(&self) -> Option<Reg> {
        use Instr::*;
        match *self {
            Add { rd, .. }
            | Sub { rd, .. }
            | Mul { rd, .. }
            | Div { rd, .. }
            | Rem { rd, .. }
            | And { rd, .. }
            | Or { rd, .. }
            | Xor { rd, .. }
            | Sll { rd, .. }
            | Srl { rd, .. }
            | Sra { rd, .. }
            | Slt { rd, .. }
            | Sltu { rd, .. }
            | Addi { rd, .. }
            | Andi { rd, .. }
            | Ori { rd, .. }
            | Xori { rd, .. }
            | Slli { rd, .. }
            | Srli { rd, .. }
            | Srai { rd, .. }
            | Slti { rd, .. }
            | Li { rd, .. }
            | Addih { rd, .. }
            | Ld { rd, .. }
            | Jal { rd, .. }
            | Jalr { rd, .. }
            | Feq { rd, .. }
            | Flt { rd, .. }
            | Fle { rd, .. }
            | Fcvtfl { rd, .. }
            | Fmvxf { rd, .. } => Some(rd),
            _ => None,
        }
    }

    /// Destination floating-point register, if any.
    pub fn fp_dst(&self) -> Option<FReg> {
        use Instr::*;
        match *self {
            Fld { fd, .. }
            | Fadd { fd, .. }
            | Fsub { fd, .. }
            | Fmul { fd, .. }
            | Fdiv { fd, .. }
            | Fmin { fd, .. }
            | Fmax { fd, .. }
            | Fsqrt { fd, .. }
            | Fneg { fd, .. }
            | Fabs { fd, .. }
            | Fcvtlf { fd, .. }
            | Fmvfx { fd, .. } => Some(fd),
            _ => None,
        }
    }

    /// Integer source registers (up to two).
    pub fn int_srcs(&self) -> [Option<Reg>; 2] {
        use Instr::*;
        match *self {
            Add { rs1, rs2, .. }
            | Sub { rs1, rs2, .. }
            | Mul { rs1, rs2, .. }
            | Div { rs1, rs2, .. }
            | Rem { rs1, rs2, .. }
            | And { rs1, rs2, .. }
            | Or { rs1, rs2, .. }
            | Xor { rs1, rs2, .. }
            | Sll { rs1, rs2, .. }
            | Srl { rs1, rs2, .. }
            | Sra { rs1, rs2, .. }
            | Slt { rs1, rs2, .. }
            | Sltu { rs1, rs2, .. }
            | Beq { rs1, rs2, .. }
            | Bne { rs1, rs2, .. }
            | Blt { rs1, rs2, .. }
            | Bge { rs1, rs2, .. }
            | Bltu { rs1, rs2, .. }
            | Bgeu { rs1, rs2, .. }
            | St { rs1, rs2, .. } => [Some(rs1), Some(rs2)],
            Addi { rs1, .. }
            | Andi { rs1, .. }
            | Ori { rs1, .. }
            | Xori { rs1, .. }
            | Slli { rs1, .. }
            | Srli { rs1, .. }
            | Srai { rs1, .. }
            | Slti { rs1, .. }
            | Addih { rs1, .. }
            | Ld { rs1, .. }
            | Fld { rs1, .. }
            | Fst { rs1, .. }
            | Jalr { rs1, .. }
            | Fcvtlf { rs1, .. }
            | Fmvfx { rs1, .. } => [Some(rs1), None],
            _ => [None, None],
        }
    }

    /// Floating-point source registers (up to two).
    pub fn fp_srcs(&self) -> [Option<FReg>; 2] {
        use Instr::*;
        match *self {
            Fadd { fs1, fs2, .. }
            | Fsub { fs1, fs2, .. }
            | Fmul { fs1, fs2, .. }
            | Fdiv { fs1, fs2, .. }
            | Fmin { fs1, fs2, .. }
            | Fmax { fs1, fs2, .. }
            | Feq { fs1, fs2, .. }
            | Flt { fs1, fs2, .. }
            | Fle { fs1, fs2, .. } => [Some(fs1), Some(fs2)],
            Fsqrt { fs1, .. }
            | Fneg { fs1, .. }
            | Fabs { fs1, .. }
            | Fcvtfl { fs1, .. }
            | Fmvxf { fs1, .. } => [Some(fs1), None],
            Fst { fs, .. } => [Some(fs), None],
            _ => [None, None],
        }
    }

    /// True for conditional branches (not unconditional jumps).
    pub fn is_cond_branch(&self) -> bool {
        matches!(self.fu_class(), FuClass::Branch)
    }

    /// True for any control-transfer instruction.
    pub fn is_control(&self) -> bool {
        matches!(self.fu_class(), FuClass::Branch | FuClass::Jump)
    }

    /// True for loads (integer or FP).
    pub fn is_load(&self) -> bool {
        matches!(self.fu_class(), FuClass::Load)
    }

    /// True for stores (integer or FP).
    pub fn is_store(&self) -> bool {
        matches!(self.fu_class(), FuClass::Store)
    }

    /// True for any memory-touching instruction.
    pub fn is_mem(&self) -> bool {
        self.is_load() || self.is_store()
    }

    /// Static PC-relative target offset in instructions, for direct branches
    /// and jumps (`None` for `jalr` and non-control instructions).
    pub fn rel_target(&self) -> Option<i32> {
        use Instr::*;
        match *self {
            Beq { off, .. }
            | Bne { off, .. }
            | Blt { off, .. }
            | Bge { off, .. }
            | Bltu { off, .. }
            | Bgeu { off, .. }
            | J { off }
            | Jal { off, .. } => Some(off),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(i: u8) -> Reg {
        Reg::new(i)
    }
    fn f(i: u8) -> FReg {
        FReg::new(i)
    }

    #[test]
    fn fu_classes() {
        assert_eq!(Instr::Add { rd: r(1), rs1: r(2), rs2: r(3) }.fu_class(), FuClass::IntAlu);
        assert_eq!(Instr::Mul { rd: r(1), rs1: r(2), rs2: r(3) }.fu_class(), FuClass::IntMul);
        assert_eq!(Instr::Div { rd: r(1), rs1: r(2), rs2: r(3) }.fu_class(), FuClass::IntDiv);
        assert_eq!(Instr::Fsqrt { fd: f(0), fs1: f(1) }.fu_class(), FuClass::FpSqrt);
        assert_eq!(Instr::Ld { rd: r(1), rs1: r(2), imm: 0 }.fu_class(), FuClass::Load);
        assert_eq!(Instr::Fst { fs: f(1), rs1: r(2), imm: 0 }.fu_class(), FuClass::Store);
        assert_eq!(Instr::Syscall { code: 3 }.fu_class(), FuClass::Syscall);
    }

    #[test]
    fn dependency_sets_are_consistent() {
        let i = Instr::St { rs2: r(7), rs1: r(8), imm: 16 };
        assert_eq!(i.int_srcs(), [Some(r(8)), Some(r(7))]);
        assert_eq!(i.int_dst(), None);
        assert!(i.is_store() && i.is_mem() && !i.is_load());

        let i = Instr::Fld { fd: f(3), rs1: r(2), imm: -8 };
        assert_eq!(i.fp_dst(), Some(f(3)));
        assert_eq!(i.int_srcs(), [Some(r(2)), None]);
        assert!(i.is_load());

        let i = Instr::Feq { rd: r(9), fs1: f(1), fs2: f(2) };
        assert_eq!(i.int_dst(), Some(r(9)));
        assert_eq!(i.fp_srcs(), [Some(f(1)), Some(f(2))]);
    }

    #[test]
    fn control_flow_classification() {
        let b = Instr::Beq { rs1: r(1), rs2: r(2), off: -4 };
        assert!(b.is_cond_branch() && b.is_control());
        assert_eq!(b.rel_target(), Some(-4));
        let j = Instr::Jal { rd: Reg::RA, off: 100 };
        assert!(!j.is_cond_branch() && j.is_control());
        assert_eq!(j.rel_target(), Some(100));
        let jr = Instr::Jalr { rd: Reg::ZERO, rs1: Reg::RA, imm: 0 };
        assert_eq!(jr.rel_target(), None);
        assert!(jr.is_control());
    }
}
