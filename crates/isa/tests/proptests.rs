//! Property-based tests for the ISA: encoding and assembler round-trips.

use proptest::prelude::*;
use sk_isa::disasm::{disassemble, format_instr};
use sk_isa::{asm, decode, encode, FReg, Instr, Program, Reg};

fn arb_reg() -> impl Strategy<Value = Reg> {
    (0u8..32).prop_map(Reg::new)
}

fn arb_freg() -> impl Strategy<Value = FReg> {
    (0u8..32).prop_map(FReg::new)
}

/// Any instruction, with unconstrained immediates/offsets.
fn arb_instr() -> impl Strategy<Value = Instr> {
    let r = arb_reg;
    let f = arb_freg;
    let imm = any::<i32>();
    prop_oneof![
        Just(Instr::Nop),
        (r(), r(), r()).prop_map(|(rd, rs1, rs2)| Instr::Add { rd, rs1, rs2 }),
        (r(), r(), r()).prop_map(|(rd, rs1, rs2)| Instr::Sub { rd, rs1, rs2 }),
        (r(), r(), r()).prop_map(|(rd, rs1, rs2)| Instr::Mul { rd, rs1, rs2 }),
        (r(), r(), r()).prop_map(|(rd, rs1, rs2)| Instr::Div { rd, rs1, rs2 }),
        (r(), r(), r()).prop_map(|(rd, rs1, rs2)| Instr::Rem { rd, rs1, rs2 }),
        (r(), r(), r()).prop_map(|(rd, rs1, rs2)| Instr::And { rd, rs1, rs2 }),
        (r(), r(), r()).prop_map(|(rd, rs1, rs2)| Instr::Or { rd, rs1, rs2 }),
        (r(), r(), r()).prop_map(|(rd, rs1, rs2)| Instr::Xor { rd, rs1, rs2 }),
        (r(), r(), r()).prop_map(|(rd, rs1, rs2)| Instr::Sll { rd, rs1, rs2 }),
        (r(), r(), r()).prop_map(|(rd, rs1, rs2)| Instr::Srl { rd, rs1, rs2 }),
        (r(), r(), r()).prop_map(|(rd, rs1, rs2)| Instr::Sra { rd, rs1, rs2 }),
        (r(), r(), r()).prop_map(|(rd, rs1, rs2)| Instr::Slt { rd, rs1, rs2 }),
        (r(), r(), r()).prop_map(|(rd, rs1, rs2)| Instr::Sltu { rd, rs1, rs2 }),
        (r(), r(), imm).prop_map(|(rd, rs1, imm)| Instr::Addi { rd, rs1, imm }),
        (r(), r(), imm).prop_map(|(rd, rs1, imm)| Instr::Andi { rd, rs1, imm }),
        (r(), r(), imm).prop_map(|(rd, rs1, imm)| Instr::Ori { rd, rs1, imm }),
        (r(), r(), imm).prop_map(|(rd, rs1, imm)| Instr::Xori { rd, rs1, imm }),
        (r(), r(), imm).prop_map(|(rd, rs1, imm)| Instr::Slli { rd, rs1, imm }),
        (r(), r(), imm).prop_map(|(rd, rs1, imm)| Instr::Srli { rd, rs1, imm }),
        (r(), r(), imm).prop_map(|(rd, rs1, imm)| Instr::Srai { rd, rs1, imm }),
        (r(), r(), imm).prop_map(|(rd, rs1, imm)| Instr::Slti { rd, rs1, imm }),
        (r(), imm).prop_map(|(rd, imm)| Instr::Li { rd, imm }),
        (r(), r(), imm).prop_map(|(rd, rs1, imm)| Instr::Addih { rd, rs1, imm }),
        (r(), r(), imm).prop_map(|(rd, rs1, imm)| Instr::Ld { rd, rs1, imm }),
        (r(), r(), imm).prop_map(|(rs2, rs1, imm)| Instr::St { rs2, rs1, imm }),
        (f(), r(), imm).prop_map(|(fd, rs1, imm)| Instr::Fld { fd, rs1, imm }),
        (f(), r(), imm).prop_map(|(fs, rs1, imm)| Instr::Fst { fs, rs1, imm }),
        (r(), r(), imm).prop_map(|(rs1, rs2, off)| Instr::Beq { rs1, rs2, off }),
        (r(), r(), imm).prop_map(|(rs1, rs2, off)| Instr::Bne { rs1, rs2, off }),
        (r(), r(), imm).prop_map(|(rs1, rs2, off)| Instr::Blt { rs1, rs2, off }),
        (r(), r(), imm).prop_map(|(rs1, rs2, off)| Instr::Bge { rs1, rs2, off }),
        (r(), r(), imm).prop_map(|(rs1, rs2, off)| Instr::Bltu { rs1, rs2, off }),
        (r(), r(), imm).prop_map(|(rs1, rs2, off)| Instr::Bgeu { rs1, rs2, off }),
        imm.prop_map(|off| Instr::J { off }),
        (r(), imm).prop_map(|(rd, off)| Instr::Jal { rd, off }),
        (r(), r(), imm).prop_map(|(rd, rs1, imm)| Instr::Jalr { rd, rs1, imm }),
        (f(), f(), f()).prop_map(|(fd, fs1, fs2)| Instr::Fadd { fd, fs1, fs2 }),
        (f(), f(), f()).prop_map(|(fd, fs1, fs2)| Instr::Fsub { fd, fs1, fs2 }),
        (f(), f(), f()).prop_map(|(fd, fs1, fs2)| Instr::Fmul { fd, fs1, fs2 }),
        (f(), f(), f()).prop_map(|(fd, fs1, fs2)| Instr::Fdiv { fd, fs1, fs2 }),
        (f(), f(), f()).prop_map(|(fd, fs1, fs2)| Instr::Fmin { fd, fs1, fs2 }),
        (f(), f(), f()).prop_map(|(fd, fs1, fs2)| Instr::Fmax { fd, fs1, fs2 }),
        (f(), f()).prop_map(|(fd, fs1)| Instr::Fsqrt { fd, fs1 }),
        (f(), f()).prop_map(|(fd, fs1)| Instr::Fneg { fd, fs1 }),
        (f(), f()).prop_map(|(fd, fs1)| Instr::Fabs { fd, fs1 }),
        (r(), f(), f()).prop_map(|(rd, fs1, fs2)| Instr::Feq { rd, fs1, fs2 }),
        (r(), f(), f()).prop_map(|(rd, fs1, fs2)| Instr::Flt { rd, fs1, fs2 }),
        (r(), f(), f()).prop_map(|(rd, fs1, fs2)| Instr::Fle { rd, fs1, fs2 }),
        (f(), r()).prop_map(|(fd, rs1)| Instr::Fcvtlf { fd, rs1 }),
        (r(), f()).prop_map(|(rd, fs1)| Instr::Fcvtfl { rd, fs1 }),
        (r(), f()).prop_map(|(rd, fs1)| Instr::Fmvxf { rd, fs1 }),
        (f(), r()).prop_map(|(fd, rs1)| Instr::Fmvfx { fd, rs1 }),
        any::<u16>().prop_map(|code| Instr::Syscall { code }),
    ]
}

proptest! {
    /// decode(encode(i)) == i for every instruction.
    #[test]
    fn encode_decode_round_trip(i in arb_instr()) {
        prop_assert_eq!(decode(encode(&i)), Ok(i));
    }

    /// assemble(format(i)) == i for every single instruction (the branch
    /// offset is emitted numerically, which the assembler accepts).
    #[test]
    fn disasm_asm_round_trip_single(i in arb_instr()) {
        let src = format!("  {}\n", format_instr(&i));
        let p = match asm::assemble(&src) {
            Ok(p) => p,
            // A random branch offset almost always leaves the 1-instruction
            // text segment; that rejection is Program::validate working.
            Err(e) => {
                prop_assert!(i.is_control(), "unexpected asm error: {e}");
                return Ok(());
            }
        };
        prop_assert_eq!(p.text.len(), 1);
        prop_assert_eq!(p.text[0], i);
    }

    /// Whole-program listing round-trip for straight-line code.
    #[test]
    fn disassemble_reassemble(instrs in proptest::collection::vec(arb_instr(), 1..40),
                              data in proptest::collection::vec(any::<u64>(), 0..16)) {
        // Drop control flow so all programs validate; this property targets
        // the operand formatting of every other instruction class.
        let text: Vec<Instr> = instrs.into_iter().filter(|i| !i.is_control()).collect();
        prop_assume!(!text.is_empty());
        let p = Program { text, data, entry: Program::text_addr(0), symbols: Default::default() };
        let p2 = asm::assemble(&disassemble(&p)).unwrap();
        prop_assert_eq!(p.text, p2.text);
        prop_assert_eq!(p.data, p2.data);
    }

    /// Encoded words that decode successfully re-encode to a word that
    /// decodes to the same instruction (decode is a partial inverse).
    #[test]
    fn decode_encode_partial_inverse(w in any::<u64>()) {
        if let Ok(i) = decode(w) {
            prop_assert_eq!(decode(encode(&i)), Ok(i));
        }
    }
}
