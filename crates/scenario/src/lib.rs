//! # sk-scenario — declarative `.skn` run descriptions
//!
//! A scenario file pins a complete simulation run — topology, core count,
//! memory shards, slack scheme, kernel and its inputs, checkpoint and ROI
//! markers — in one declarative artifact, so the *same* run can be driven
//! bit-identically through the CLI (`slacksim run --scenario`), the
//! deterministic schedule fuzzer (`--det-schedules`) and an sk-serve job
//! (`POST /jobs` with a `scenario` body).
//!
//! The format is a strict, hand-rolled TOML subset (zero dependencies):
//!
//! ```text
//! # one-file run description
//! [scenario]
//! name = "pipeline-smoke"        # optional identity
//!
//! [target]
//! cores = 4                      # 1..=256
//! mem_shards = 0                 # 0 = classic single manager
//! model = "ooo"                  # "ooo" | "inorder"
//!
//! [run]
//! scheme = "S10"                 # Figure-8 notation (CC, Q10, S9*, SU, ...)
//! track_violations = true
//! checkpoint_at = 5000           # optional: snapshot marker, cycles
//! roi_instructions = 100000      # optional: StopCondition::RoiInstructions
//!
//! [kernel]
//! name = "pipeline"              # any registered kernel
//! items = 8                      # integer inputs; unknown keys rejected
//! ```
//!
//! Values are `i64` integers, `true`/`false`, or `"quoted strings"`
//! (no escape sequences); `#` starts a comment. Parsing is total: any
//! byte sequence yields either a valid [`Scenario`] or a typed
//! [`ScenarioParseError`] with a line number — never a panic. A parsed
//! scenario is valid by construction (the kernel registry has vetted the
//! kernel name and its parameters), [`Scenario::emit`] is a canonical
//! re-serialization with `parse(emit(s)) == s`, and [`Scenario::hash`]
//! over the canonical form gives servers a content address (sk-serve
//! folds it into the snapshot warm-start cache key).

use sk_core::{CoreModel, Scheme, StopCondition, TargetConfig};
use sk_kernels::{
    actors, barnes, fft, lu, micro, ocean, pipeline, radix, treiber, water, worksteal, Workload,
};
use std::collections::BTreeMap;
use std::fmt;

/// Upper bound on `[target] cores`.
pub const MAX_CORES: usize = 256;
/// Upper bound on `[target] mem_shards`.
pub const MAX_SHARDS: usize = 64;
/// Upper bound on any `[kernel]` integer parameter (keeps the assembled
/// data segment small enough to simulate).
pub const MAX_PARAM: i64 = 16_384;

/// A fully-validated scenario: one declarative run description.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Scenario {
    /// Display identity from `[scenario] name` (may be empty).
    pub name: String,
    /// Target core count.
    pub cores: usize,
    /// Sharded memory-manager threads (0 = single manager).
    pub mem_shards: usize,
    /// Per-core microarchitecture.
    pub model: CoreModel,
    /// Slack scheme driving the run.
    pub scheme: Scheme,
    /// Record conflicting-access reorderings (paper §3.2.3).
    pub track_violations: bool,
    /// Optional mid-run snapshot marker, in simulated cycles.
    pub checkpoint_at: Option<u64>,
    /// Optional ROI instruction budget ([`StopCondition::RoiInstructions`]).
    pub roi_instructions: Option<u64>,
    /// Kernel name as written in the file (looked up case-insensitively).
    pub kernel: String,
    /// Kernel inputs; keys missing here take the registry defaults.
    pub params: BTreeMap<String, i64>,
}

impl Default for Scenario {
    fn default() -> Self {
        Scenario {
            name: String::new(),
            cores: 4,
            mem_shards: 0,
            model: CoreModel::OutOfOrder,
            scheme: Scheme::CycleByCycle,
            track_violations: false,
            checkpoint_at: None,
            roi_instructions: None,
            kernel: String::new(),
            params: BTreeMap::new(),
        }
    }
}

/// Why a scenario failed to parse or validate. Every variant carries
/// enough context to point at the offending line or key; parsing never
/// panics on any input.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ScenarioParseError {
    /// Not `[section]` / `key = value` shaped.
    Syntax {
        /// 1-based source line.
        line: usize,
        /// What was malformed.
        what: String,
    },
    /// A section header other than scenario/target/run/kernel.
    UnknownSection {
        /// 1-based source line.
        line: usize,
        /// The unrecognized section name.
        section: String,
    },
    /// A key this section does not define.
    UnknownKey {
        /// 1-based source line.
        line: usize,
        /// The unrecognized `section.key`.
        key: String,
    },
    /// The same key (or section) appeared twice.
    DuplicateKey {
        /// 1-based source line.
        line: usize,
        /// The duplicated `section.key` or `[section]`.
        key: String,
    },
    /// The value has the wrong type or is out of range.
    BadValue {
        /// 1-based source line.
        line: usize,
        /// The offending `section.key`.
        key: String,
        /// What was wrong with the value.
        what: String,
    },
    /// No `[kernel] name` was given.
    MissingKernel,
    /// `[kernel] name` is not in the registry.
    UnknownKernel {
        /// The unrecognized kernel name.
        kernel: String,
    },
    /// A `[kernel]` parameter the named kernel does not take, or a
    /// parameter/core-count combination the kernel rejects.
    BadParam {
        /// The kernel being configured.
        kernel: String,
        /// Which parameter (or constraint) failed.
        param: String,
        /// Why.
        what: String,
    },
}

impl fmt::Display for ScenarioParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioParseError::Syntax { line, what } => write!(f, "line {line}: {what}"),
            ScenarioParseError::UnknownSection { line, section } => {
                write!(f, "line {line}: unknown section [{section}]")
            }
            ScenarioParseError::UnknownKey { line, key } => {
                write!(f, "line {line}: unknown key '{key}'")
            }
            ScenarioParseError::DuplicateKey { line, key } => {
                write!(f, "line {line}: duplicate '{key}'")
            }
            ScenarioParseError::BadValue { line, key, what } => {
                write!(f, "line {line}: bad value for '{key}': {what}")
            }
            ScenarioParseError::MissingKernel => write!(f, "scenario has no [kernel] name"),
            ScenarioParseError::UnknownKernel { kernel } => {
                write!(f, "unknown kernel '{kernel}' (see sk_scenario::kernel_names())")
            }
            ScenarioParseError::BadParam { kernel, param, what } => {
                write!(f, "kernel '{kernel}': parameter '{param}': {what}")
            }
        }
    }
}

impl std::error::Error for ScenarioParseError {}

// ---------------------------------------------------------------------------
// Kernel registry
// ---------------------------------------------------------------------------

/// One registered kernel: its canonical name, accepted parameters with
/// defaults, the smallest core count it supports, and a builder.
struct KernelSpec {
    name: &'static str,
    /// `(key, default)` — the builder receives resolved values in this order.
    params: &'static [(&'static str, i64)],
    min_cores: usize,
    build: fn(usize, &[i64]) -> Workload,
}

/// Registry of every kernel a scenario can name. Input floors mirror
/// `sk_kernels::{paper_suite, extended_suite, irregular_suite}` so
/// many-core scenarios stay well-formed without per-file tuning.
const KERNELS: &[KernelSpec] = &[
    KernelSpec {
        name: "Barnes",
        params: &[("bodies", 24), ("steps", 1)],
        min_cores: 1,
        build: |c, p| barnes::barnes(c, (p[0] as usize).max(c), p[1] as usize),
    },
    KernelSpec {
        name: "FFT",
        params: &[("log2", 6)],
        min_cores: 1,
        build: |c, p| {
            let floor = usize::BITS - c.next_power_of_two().leading_zeros() - 1;
            fft::fft(c, (p[0] as u32).max(floor).min(20))
        },
    },
    KernelSpec {
        name: "LU",
        params: &[("n", 12)],
        min_cores: 1,
        build: |c, p| lu::lu(c, p[0] as usize),
    },
    KernelSpec {
        name: "Water-Nsquared",
        params: &[("molecules", 16), ("steps", 1)],
        min_cores: 1,
        build: |c, p| water::water(c, (p[0] as usize).max(c), p[1] as usize),
    },
    KernelSpec {
        name: "Radix",
        params: &[("n", 64)],
        min_cores: 1,
        build: |c, p| radix::radix(c, (p[0] as usize).max(c)),
    },
    KernelSpec {
        name: "Ocean",
        params: &[("m", 8), ("sweeps", 2)],
        min_cores: 1,
        build: |c, p| ocean::ocean(c, (p[0] as usize).max(c), p[1] as usize),
    },
    KernelSpec {
        name: "pingpong",
        params: &[("rounds", 200)],
        min_cores: 2,
        build: |_, p| micro::pingpong(p[0]),
    },
    KernelSpec {
        name: "lock_sweep",
        params: &[("iters", 50)],
        min_cores: 1,
        build: |c, p| micro::lock_sweep(c, p[0]),
    },
    KernelSpec {
        name: "private_compute",
        params: &[("iters", 200)],
        min_cores: 1,
        build: |c, p| micro::private_compute(c, p[0]),
    },
    KernelSpec {
        name: "racy_increment",
        params: &[("iters", 50)],
        min_cores: 1,
        build: |c, p| micro::racy_increment(c, p[0]),
    },
    KernelSpec {
        name: "false_sharing",
        params: &[("iters", 50)],
        min_cores: 1,
        build: |c, p| micro::false_sharing(c, p[0]),
    },
    KernelSpec {
        name: "pipeline",
        params: &[("items", 8)],
        min_cores: 2,
        build: |c, p| pipeline::pipeline(c, p[0]),
    },
    KernelSpec {
        name: "mailbox_actors",
        params: &[("rounds", 2)],
        min_cores: 2,
        build: |c, p| actors::mailbox_actors(c, p[0]),
    },
    KernelSpec {
        name: "work_steal",
        params: &[("tasks", 24)],
        min_cores: 1,
        build: |c, p| worksteal::work_steal(c, p[0].max(2 * c as i64)),
    },
    KernelSpec {
        name: "treiber_stack",
        params: &[("pushes", 4)],
        min_cores: 1,
        build: |c, p| treiber::treiber_stack(c, p[0]),
    },
];

/// Canonical names of every kernel a scenario can reference.
pub fn kernel_names() -> Vec<&'static str> {
    KERNELS.iter().map(|k| k.name).collect()
}

/// Accepted `[kernel]` parameter names and defaults for `name`
/// (case-insensitive), with the smallest core count the kernel supports.
pub fn kernel_params(name: &str) -> Option<(&'static [(&'static str, i64)], usize)> {
    find_kernel(name).map(|k| (k.params, k.min_cores))
}

fn find_kernel(name: &str) -> Option<&'static KernelSpec> {
    KERNELS.iter().find(|k| k.name.eq_ignore_ascii_case(name))
}

impl Scenario {
    /// Build the scenario's workload. Errors (typed, never panics) if the
    /// kernel is unknown, a parameter is not accepted or out of range, or
    /// the core count is below the kernel's minimum — `parse` has already
    /// run this check, so scenarios from files cannot fail here.
    pub fn workload(&self) -> Result<Workload, ScenarioParseError> {
        let spec = find_kernel(&self.kernel)
            .ok_or_else(|| ScenarioParseError::UnknownKernel { kernel: self.kernel.clone() })?;
        let bad = |param: &str, what: String| ScenarioParseError::BadParam {
            kernel: spec.name.to_string(),
            param: param.to_string(),
            what,
        };
        if self.cores < spec.min_cores {
            return Err(bad("cores", format!("kernel needs at least {} cores", spec.min_cores)));
        }
        for key in self.params.keys() {
            if !spec.params.iter().any(|(k, _)| k == key) {
                return Err(bad(key, "not a parameter of this kernel".into()));
            }
        }
        let mut resolved = Vec::with_capacity(spec.params.len());
        for (key, default) in spec.params {
            let v = *self.params.get(*key).unwrap_or(default);
            if !(1..=MAX_PARAM).contains(&v) {
                return Err(bad(key, format!("must be in 1..={MAX_PARAM}, got {v}")));
            }
            resolved.push(v);
        }
        Ok((spec.build)(self.cores, &resolved))
    }

    /// A [`TargetConfig`] realizing the scenario's `[target]`/`[run]`
    /// sections on the small-core baseline config.
    pub fn config(&self) -> TargetConfig {
        let mut cfg = TargetConfig::small(self.cores);
        cfg.core.model = self.model;
        cfg.mem_shards = self.mem_shards;
        cfg.track_workload_violations = self.track_violations;
        cfg.mem.track_violations = self.track_violations;
        if let Some(roi) = self.roi_instructions {
            cfg.stop = StopCondition::RoiInstructions(roi);
        }
        cfg
    }

    /// Canonical serialization: `parse(s.emit())` reconstructs `s`
    /// exactly (defaults are written out, params sorted by key). Strings
    /// containing `"` cannot be represented and are emitted with the
    /// quote stripped.
    pub fn emit(&self) -> String {
        let mut out = String::new();
        let clean = |s: &str| s.replace('"', "");
        if !self.name.is_empty() {
            out.push_str("[scenario]\n");
            out.push_str(&format!("name = \"{}\"\n\n", clean(&self.name)));
        }
        out.push_str("[target]\n");
        out.push_str(&format!("cores = {}\n", self.cores));
        out.push_str(&format!("mem_shards = {}\n", self.mem_shards));
        let model = match self.model {
            CoreModel::OutOfOrder => "ooo",
            CoreModel::InOrder => "inorder",
        };
        out.push_str(&format!("model = \"{model}\"\n\n"));
        out.push_str("[run]\n");
        out.push_str(&format!("scheme = \"{}\"\n", self.scheme.short_name()));
        out.push_str(&format!("track_violations = {}\n", self.track_violations));
        if let Some(c) = self.checkpoint_at {
            out.push_str(&format!("checkpoint_at = {c}\n"));
        }
        if let Some(r) = self.roi_instructions {
            out.push_str(&format!("roi_instructions = {r}\n"));
        }
        out.push_str("\n[kernel]\n");
        out.push_str(&format!("name = \"{}\"\n", clean(&self.kernel)));
        for (k, v) in &self.params {
            out.push_str(&format!("{} = {}\n", clean(k), v));
        }
        out
    }

    /// FNV-1a over the canonical form: the scenario's content address.
    pub fn hash(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in self.emit().bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        h
    }

    /// Parse and fully validate scenario text. Total over arbitrary
    /// input: returns a typed error, never panics.
    pub fn parse(text: &str) -> Result<Scenario, ScenarioParseError> {
        let mut sc = Scenario::default();
        let mut section: Option<&'static str> = None;
        let mut seen: Vec<String> = Vec::new();
        for (idx, raw) in text.lines().enumerate() {
            let line = idx + 1;
            let stripped = strip_comment(raw);
            let body = stripped.trim();
            if body.is_empty() {
                continue;
            }
            if let Some(rest) = body.strip_prefix('[') {
                let name = rest.strip_suffix(']').ok_or_else(|| ScenarioParseError::Syntax {
                    line,
                    what: "section header missing closing ']'".into(),
                })?;
                let canon = match name.trim() {
                    "scenario" => "scenario",
                    "target" => "target",
                    "run" => "run",
                    "kernel" => "kernel",
                    other => {
                        return Err(ScenarioParseError::UnknownSection {
                            line,
                            section: other.to_string(),
                        })
                    }
                };
                let tag = format!("[{canon}]");
                if seen.contains(&tag) {
                    return Err(ScenarioParseError::DuplicateKey { line, key: tag });
                }
                seen.push(tag);
                section = Some(canon);
                continue;
            }
            let (key, val_txt) =
                body.split_once('=').ok_or_else(|| ScenarioParseError::Syntax {
                    line,
                    what: format!("expected 'key = value', got '{body}'"),
                })?;
            let key = key.trim();
            if key.is_empty() || !key.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
                return Err(ScenarioParseError::Syntax {
                    line,
                    what: format!("bad key name '{key}'"),
                });
            }
            let sect = section.ok_or_else(|| ScenarioParseError::Syntax {
                line,
                what: format!("key '{key}' before any [section]"),
            })?;
            let full = format!("{sect}.{key}");
            if seen.contains(&full) {
                return Err(ScenarioParseError::DuplicateKey { line, key: full });
            }
            seen.push(full.clone());
            let val = parse_value(val_txt.trim(), line, &full)?;
            apply_key(&mut sc, sect, key, val, line, &full)?;
        }
        if sc.kernel.is_empty() {
            return Err(ScenarioParseError::MissingKernel);
        }
        // Vet kernel name + params + core floor now, so a parsed scenario
        // is runnable by construction.
        sc.workload()?;
        Ok(sc)
    }
}

/// Drop a `#` comment, respecting quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

enum Val {
    Int(i64),
    Bool(bool),
    Str(String),
}

fn parse_value(txt: &str, line: usize, key: &str) -> Result<Val, ScenarioParseError> {
    let bad = |what: String| ScenarioParseError::BadValue { line, key: key.to_string(), what };
    if let Some(rest) = txt.strip_prefix('"') {
        let inner = rest.strip_suffix('"').ok_or_else(|| bad("unterminated string".into()))?;
        if inner.contains('"') {
            return Err(bad("embedded '\"' is not supported".into()));
        }
        if inner.chars().any(|c| c.is_control()) {
            return Err(bad("control character in string".into()));
        }
        return Ok(Val::Str(inner.to_string()));
    }
    match txt {
        "true" => Ok(Val::Bool(true)),
        "false" => Ok(Val::Bool(false)),
        _ => txt
            .parse::<i64>()
            .map(Val::Int)
            .map_err(|_| bad(format!("expected integer, bool or \"string\", got '{txt}'"))),
    }
}

fn apply_key(
    sc: &mut Scenario,
    sect: &str,
    key: &str,
    val: Val,
    line: usize,
    full: &str,
) -> Result<(), ScenarioParseError> {
    let bad = |what: String| ScenarioParseError::BadValue { line, key: full.to_string(), what };
    let unknown = || ScenarioParseError::UnknownKey { line, key: full.to_string() };
    let want_int = |v: Val| match v {
        Val::Int(i) => Ok(i),
        _ => Err(bad("expected an integer".into())),
    };
    let want_str = |v: Val| match v {
        Val::Str(s) => Ok(s),
        _ => Err(bad("expected a \"string\"".into())),
    };
    match (sect, key) {
        ("scenario", "name") => sc.name = want_str(val)?,
        ("target", "cores") => {
            let c = want_int(val)?;
            if !(1..=MAX_CORES as i64).contains(&c) {
                return Err(bad(format!("must be in 1..={MAX_CORES}")));
            }
            sc.cores = c as usize;
        }
        ("target", "mem_shards") => {
            let s = want_int(val)?;
            if !(0..=MAX_SHARDS as i64).contains(&s) {
                return Err(bad(format!("must be in 0..={MAX_SHARDS}")));
            }
            sc.mem_shards = s as usize;
        }
        ("target", "model") => {
            sc.model = match want_str(val)?.as_str() {
                "ooo" => CoreModel::OutOfOrder,
                "inorder" => CoreModel::InOrder,
                other => {
                    return Err(bad(format!("expected \"ooo\" or \"inorder\", got \"{other}\"")))
                }
            }
        }
        ("run", "scheme") => {
            sc.scheme = want_str(val)?.parse::<Scheme>().map_err(|e| bad(e.to_string()))?;
        }
        ("run", "track_violations") => {
            sc.track_violations = match val {
                Val::Bool(b) => b,
                _ => return Err(bad("expected true or false".into())),
            }
        }
        ("run", "checkpoint_at") => {
            let c = want_int(val)?;
            if c < 1 {
                return Err(bad("must be >= 1".into()));
            }
            sc.checkpoint_at = Some(c as u64);
        }
        ("run", "roi_instructions") => {
            let r = want_int(val)?;
            if r < 1 {
                return Err(bad("must be >= 1".into()));
            }
            sc.roi_instructions = Some(r as u64);
        }
        ("kernel", "name") => sc.kernel = want_str(val)?,
        ("kernel", _) => {
            sc.params.insert(key.to_string(), want_int(val)?);
        }
        ("scenario", _) | ("target", _) | ("run", _) => return Err(unknown()),
        _ => unreachable!("sections are vetted at the header"),
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    const EXAMPLE: &str = r#"
# message-passing smoke scenario
[scenario]
name = "mailbox-smoke"

[target]
cores = 4
mem_shards = 2
model = "inorder"

[run]
scheme = "S10"          # bounded slack, window 10
track_violations = true
checkpoint_at = 5000

[kernel]
name = "mailbox_actors"
rounds = 3
"#;

    #[test]
    fn example_parses_and_round_trips() {
        let sc = Scenario::parse(EXAMPLE).expect("example parses");
        assert_eq!(sc.name, "mailbox-smoke");
        assert_eq!(sc.cores, 4);
        assert_eq!(sc.mem_shards, 2);
        assert_eq!(sc.model, CoreModel::InOrder);
        assert_eq!(sc.scheme, Scheme::BoundedSlack(10));
        assert!(sc.track_violations);
        assert_eq!(sc.checkpoint_at, Some(5000));
        assert_eq!(sc.params.get("rounds"), Some(&3));
        let rt = Scenario::parse(&sc.emit()).expect("canonical form parses");
        assert_eq!(rt, sc);
        assert_eq!(rt.hash(), sc.hash());
    }

    #[test]
    fn defaults_fill_unwritten_keys() {
        let sc = Scenario::parse("[kernel]\nname = \"lock_sweep\"\n").unwrap();
        assert_eq!(sc.cores, 4);
        assert_eq!(sc.scheme, Scheme::CycleByCycle);
        assert_eq!(sc.model, CoreModel::OutOfOrder);
        let w = sc.workload().unwrap();
        assert_eq!(w.name, "lock_sweep");
        assert_eq!(w.n_threads, 4);
    }

    #[test]
    fn workload_uses_declared_params() {
        let sc = Scenario::parse("[kernel]\nname = \"pipeline\"\nitems = 11\n").unwrap();
        let w = sc.workload().unwrap();
        assert!(w.input.contains("11 items"), "input was {}", w.input);
        assert_eq!(w.n_threads, 4);
    }

    #[test]
    fn every_registered_kernel_builds_at_four_cores() {
        for name in kernel_names() {
            let sc = Scenario::parse(&format!("[kernel]\nname = \"{name}\"\n")).unwrap();
            let w = sc.workload().unwrap();
            w.program.validate().expect("kernel program validates");
            // racy_increment is racy by design: no host-expected values.
            assert!(!w.expected.is_empty() || w.name == "racy_increment");
        }
    }

    #[test]
    fn typed_errors_cover_the_failure_modes() {
        use ScenarioParseError as E;
        type Check = fn(&E) -> bool;
        let cases: &[(&str, Check)] = &[
            ("[kernel]\nname = \"nope\"\n", |e| matches!(e, E::UnknownKernel { .. })),
            ("[weird]\n", |e| matches!(e, E::UnknownSection { .. })),
            ("cores = 4\n", |e| matches!(e, E::Syntax { .. })),
            ("[target]\ncores = 4\ncores = 8\n", |e| matches!(e, E::DuplicateKey { .. })),
            ("[target]\ncores = \"four\"\n", |e| matches!(e, E::BadValue { .. })),
            ("[target]\ncores = 0\n", |e| matches!(e, E::BadValue { .. })),
            ("[target]\nbananas = 1\n", |e| matches!(e, E::UnknownKey { .. })),
            ("[run]\nscheme = \"Z9\"\n", |e| matches!(e, E::BadValue { .. })),
            ("[run]\nscheme = \"Q0\"\n", |e| matches!(e, E::BadValue { .. })),
            ("[target]\ncores = 4\n", |e| matches!(e, E::MissingKernel)),
            ("[kernel]\nname = \"pipeline\"\nbodies = 3\n", |e| matches!(e, E::BadParam { .. })),
            ("[kernel]\nname = \"pipeline\"\nitems = 0\n", |e| matches!(e, E::BadParam { .. })),
            ("[target]\ncores = 1\n[kernel]\nname = \"pipeline\"\n", |e| {
                matches!(e, E::BadParam { .. })
            }),
            ("[scenario]\nname = \"x\nitems\"\n", |e| {
                matches!(e, E::Syntax { .. } | E::BadValue { .. })
            }),
        ];
        for (txt, check) in cases {
            match Scenario::parse(txt) {
                Err(e) => assert!(check(&e), "wrong error for {txt:?}: {e:?}"),
                Ok(sc) => panic!("{txt:?} unexpectedly parsed: {sc:?}"),
            }
        }
    }

    #[test]
    fn comments_respect_quoted_strings() {
        let sc =
            Scenario::parse("[scenario]\nname = \"a#b\"\n[kernel]\nname = \"lock_sweep\" # ok\n")
                .unwrap();
        assert_eq!(sc.name, "a#b");
        assert_eq!(sc.kernel, "lock_sweep");
    }

    #[test]
    fn hash_is_content_addressed() {
        let a = Scenario::parse("[kernel]\nname = \"pipeline\"\nitems = 8\n").unwrap();
        // Spelling the default explicitly yields the same canonical form.
        let b = Scenario::parse("[target]\ncores = 4\n[kernel]\nname = \"pipeline\"\nitems = 8\n")
            .unwrap();
        let c = Scenario::parse("[kernel]\nname = \"pipeline\"\nitems = 9\n").unwrap();
        assert_eq!(a.hash(), b.hash());
        assert_ne!(a.hash(), c.hash());
    }

    #[test]
    fn config_reflects_target_and_run_sections() {
        let sc = Scenario::parse(
            "[target]\ncores = 6\nmem_shards = 2\nmodel = \"inorder\"\n\
             [run]\ntrack_violations = true\nroi_instructions = 1234\n\
             [kernel]\nname = \"work_steal\"\n",
        )
        .unwrap();
        let cfg = sc.config();
        assert_eq!(cfg.n_cores, 6);
        assert_eq!(cfg.mem_shards, 2);
        assert_eq!(cfg.core.model, CoreModel::InOrder);
        assert!(cfg.track_workload_violations);
        assert_eq!(cfg.stop, StopCondition::RoiInstructions(1234));
        cfg.validate().expect("scenario config validates");
    }
}
