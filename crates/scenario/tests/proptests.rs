//! Property wall for the `.skn` scenario format.
//!
//! Three invariants pin the frontend:
//! 1. **Round-trip**: for any valid [`Scenario`], `parse(emit(s)) == s`
//!    (the canonical form is a fixed point, including the content hash).
//! 2. **Totality**: arbitrary byte mutations of a valid file produce
//!    either a valid scenario or a typed [`ScenarioParseError`] — never a
//!    panic, and never an unrunnable "valid" scenario.
//! 3. **Garbage totality**: fully random text is equally panic-free.

use proptest::prelude::*;
use sk_core::{CoreModel, Scheme};
use sk_scenario::{kernel_names, kernel_params, Scenario};

fn arb_scheme() -> BoxedStrategy<Scheme> {
    prop_oneof![
        Just(Scheme::CycleByCycle),
        (1u64..500).prop_map(Scheme::Quantum),
        (1u64..500).prop_map(Scheme::Lookahead),
        (1u64..500).prop_map(Scheme::BoundedSlack),
        (1u64..500).prop_map(Scheme::OldestFirstBounded),
        Just(Scheme::Unbounded),
        (1u64..50, 0u64..500).prop_map(|(min, d)| Scheme::AdaptiveQuantum { min, max: min + d }),
        (1u64..500).prop_map(|budget| Scheme::Adaptive { budget }),
    ]
    .boxed()
}

fn arb_scenario() -> BoxedStrategy<Scenario> {
    let kernels = kernel_names();
    (
        (0usize..kernels.len(), 2usize..=12, 0usize..=4, any::<bool>()),
        (arb_scheme(), any::<bool>()),
        (
            (0u64..20_000, any::<bool>()),
            (0u64..100_000, any::<bool>()),
            (0u32..1000, any::<bool>()),
            1i64..=64,
        ),
    )
        .prop_map(move |((ki, cores, shards, inorder), (scheme, track), (chk, roi, name, pval))| {
            let kernel = kernels[ki];
            let (params, _min_cores) = kernel_params(kernel).unwrap();
            let mut sc = Scenario {
                cores,
                mem_shards: shards,
                model: if inorder { CoreModel::InOrder } else { CoreModel::OutOfOrder },
                scheme,
                track_violations: track,
                checkpoint_at: chk.1.then_some(chk.0 + 1),
                roi_instructions: roi.1.then_some(roi.0 + 1),
                kernel: kernel.to_string(),
                ..Scenario::default()
            };
            if name.1 {
                sc.name = format!("prop-{}", name.0);
            }
            // Override the kernel's first parameter half the time.
            if pval % 2 == 0 {
                if let Some((key, _)) = params.first() {
                    sc.params.insert(key.to_string(), pval);
                }
            }
            sc
        })
        .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn emit_then_parse_is_identity(sc in arb_scenario()) {
        let text = sc.emit();
        let back = match Scenario::parse(&text) {
            Ok(b) => b,
            Err(e) => return Err(TestCaseError::Fail(
                format!("canonical form failed to parse: {e}\n{text}"))),
        };
        prop_assert_eq!(&back, &sc);
        prop_assert_eq!(back.hash(), sc.hash());
        // The canonical form is a fixed point of emit ∘ parse.
        prop_assert_eq!(back.emit(), text);
    }

    #[test]
    fn mutated_files_never_panic_and_errors_stay_typed(
        sc in arb_scenario(),
        muts in proptest::collection::vec((0usize..4096, 0u8..=255), 1..8),
    ) {
        let mut bytes = sc.emit().into_bytes();
        for (pos, byte) in muts {
            let i = pos % bytes.len();
            bytes[i] = byte;
        }
        let text = String::from_utf8_lossy(&bytes);
        match Scenario::parse(&text) {
            // A still-valid scenario must still be runnable end to end.
            Ok(parsed) => {
                prop_assert!(parsed.workload().is_ok());
            }
            // The Display impl must be total too.
            Err(e) => {
                prop_assert!(!e.to_string().is_empty());
            }
        }
    }

    #[test]
    fn random_garbage_never_panics(
        bytes in proptest::collection::vec(0u8..=255, 0..256),
    ) {
        let text = String::from_utf8_lossy(&bytes);
        if let Err(e) = Scenario::parse(&text) {
            prop_assert!(!e.to_string().is_empty());
        }
    }
}
