//! `any::<T>()` — full-domain strategies for primitive types.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// Draw one value from the type's whole domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`]. `Copy` so a binding can be reused in
/// several tuple strategies (matching real proptest's `Any` types).
pub struct AnyStrategy<T>(PhantomData<T>);

impl<T> Clone for AnyStrategy<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for AnyStrategy<T> {}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy over the whole domain of `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

macro_rules! arbitrary_int {
    ($($t:ty),+) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )+};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite doubles only: uniform bits would mostly be NaN-adjacent
        // noise for the numeric tests this suite runs.
        let mantissa = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        let scale = (rng.below(61) as i32 - 30) as f64;
        mantissa * scale.exp2()
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        f64::arbitrary(rng) as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_domain_reasonably() {
        let mut rng = TestRng::from_seed(7);
        let mut neg = false;
        let mut pos = false;
        for _ in 0..100 {
            let v: i32 = any::<i32>().generate(&mut rng);
            neg |= v < 0;
            pos |= v > 0;
        }
        assert!(neg && pos, "i32 domain should include both signs");
        let s = any::<u16>();
        let t = s; // Copy: reusable across tuple strategies
        let _ = (s, t).generate(&mut rng);
    }

    #[test]
    fn f64_is_finite() {
        let mut rng = TestRng::from_seed(8);
        for _ in 0..1000 {
            assert!(any::<f64>().generate(&mut rng).is_finite());
        }
    }
}
