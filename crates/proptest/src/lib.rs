//! Offline stand-in for the slice of `proptest` this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors minimal, API-compatible implementations of its external
//! dependencies. This one covers the strategy combinators and macros the
//! test suite actually calls: integer/range strategies, `any::<T>()`,
//! `Just`, tuples, `prop_map`, `prop_oneof!`, `collection::vec`, the
//! `proptest!` runner macro and the `prop_assert*` family.
//!
//! Differences from real proptest, deliberately accepted:
//! * **No shrinking.** A failing case reports its exact inputs (they are
//!   reproducible from the fixed per-test seed) but is not minimized.
//! * **Deterministic seeding.** Each test derives its RNG seed from the
//!   test's module path and name, so runs are stable in CI. Set
//!   `PROPTEST_SEED` to explore a different universe, and
//!   `PROPTEST_CASES` to override the case count.
//! * `.proptest-regressions` files are ignored.

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    //! The glob-import surface, mirroring `proptest::prelude`.
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// item becomes a `#[test]` that runs the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal: expands the individual test items inside [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr);) => {};
    (($cfg:expr);
     $(#[$attr:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$attr])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let cases = config.resolved_cases();
            let mut rng = $crate::test_runner::TestRng::from_name(
                concat!(module_path!(), "::", stringify!($name)),
            );
            let mut executed: u32 = 0;
            let mut rejected: u32 = 0;
            while executed < cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                let __case = format!(
                    concat!($("  ", stringify!($arg), " = {:?}\n"),+),
                    $(&$arg),+
                );
                let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                match __outcome {
                    Ok(()) => executed += 1,
                    Err($crate::test_runner::TestCaseError::Reject) => {
                        rejected += 1;
                        if rejected > 16 * cases + 256 {
                            panic!(
                                "proptest '{}': too many prop_assume rejections \
                                 ({rejected} rejected, {executed}/{cases} executed)",
                                stringify!($name),
                            );
                        }
                    }
                    Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest '{}' failed at case {}: {}\ninputs:\n{}",
                            stringify!($name),
                            executed,
                            msg,
                            __case,
                        );
                    }
                }
            }
        }
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
}

/// `assert!` that fails the current generated case with its inputs shown.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// `assert_eq!` for property tests.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {:?} == {:?}", l, r),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("{}: {:?} == {:?}", format!($($fmt)+), l, r),
            ));
        }
    }};
}

/// `assert_ne!` for property tests.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {:?} != {:?}", l, r),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("{}: {:?} != {:?}", format!($($fmt)+), l, r),
            ));
        }
    }};
}

/// Discard the current generated case (does not count toward the total).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Choose uniformly among several strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {{
        let strategies = vec![$($crate::strategy::Strategy::boxed($strat)),+];
        $crate::strategy::OneOf::new(strategies)
    }};
}
