//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// Anything that can describe a collection size: a fixed `usize` or a
/// (half-open or inclusive) range.
pub trait IntoSizeRange {
    /// `(min, max)` with `max` exclusive.
    fn bounds(&self) -> (usize, usize);
}

impl IntoSizeRange for usize {
    fn bounds(&self) -> (usize, usize) {
        (*self, *self + 1)
    }
}

impl IntoSizeRange for Range<usize> {
    fn bounds(&self) -> (usize, usize) {
        (self.start, self.end)
    }
}

impl IntoSizeRange for RangeInclusive<usize> {
    fn bounds(&self) -> (usize, usize) {
        (*self.start(), *self.end() + 1)
    }
}

/// Strategy generating `Vec<S::Value>` with a size drawn from the range.
pub struct VecStrategy<S> {
    element: S,
    min: usize,
    max: usize, // exclusive
}

/// A `Vec` strategy: `size` elements drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
    let (min, max) = size.bounds();
    assert!(min < max, "empty size range for collection::vec");
    VecStrategy { element, min, max }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.max - self.min) as u64;
        let len = self.min + if span <= 1 { 0 } else { rng.below(span) as usize };
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_respect_bounds() {
        let mut rng = TestRng::from_seed(11);
        for _ in 0..200 {
            let v = vec(0u8..10, 2..5).generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
        let fixed = vec(0u64..3, 16usize).generate(&mut rng);
        assert_eq!(fixed.len(), 16);
    }
}
