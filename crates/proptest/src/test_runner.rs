//! Test-run configuration, error type, and the deterministic RNG.

/// Per-test configuration (the slice of proptest's knobs this suite uses).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass. The
    /// `PROPTEST_CASES` environment variable overrides this when set.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }

    /// The case count after applying the `PROPTEST_CASES` override.
    pub fn resolved_cases(&self) -> u32 {
        match std::env::var("PROPTEST_CASES") {
            Ok(v) => v.parse().unwrap_or(self.cases),
            Err(_) => self.cases,
        }
    }
}

impl Default for ProptestConfig {
    /// 64 cases: smaller than real proptest's 256 to keep the simulator's
    /// heavyweight differential tests inside a CI budget.
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Why a generated case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; generate a fresh case.
    Reject,
    /// A `prop_assert*!` failed.
    Fail(String),
}

impl TestCaseError {
    /// A failure with `message`.
    pub fn fail(message: String) -> Self {
        TestCaseError::Fail(message)
    }
}

/// SplitMix64: tiny, fast, and plenty uniform for test-input generation.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed deterministically from a test's name (module path + fn name),
    /// mixed with `PROPTEST_SEED` when set so CI can explore new inputs.
    pub fn from_name(name: &str) -> Self {
        // FNV-1a over the name.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        if let Ok(seed) = std::env::var("PROPTEST_SEED") {
            if let Ok(s) = seed.parse::<u64>() {
                h ^= s.wrapping_mul(0x9e37_79b9_7f4a_7c15);
            }
        }
        TestRng { state: h }
    }

    /// Seed directly (used by the strategy unit tests).
    pub fn from_seed(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`. `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Modulo bias is ~bound/2^64: irrelevant for test generation.
        self.next_u64() % bound
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_name() {
        let a: Vec<u64> = {
            let mut r = TestRng::from_name("mod::test_a");
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = TestRng::from_name("mod::test_a");
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let mut other = TestRng::from_name("mod::test_b");
        assert_ne!(a[0], other.next_u64());
    }

    #[test]
    fn below_is_in_range() {
        let mut r = TestRng::from_seed(42);
        for _ in 0..1000 {
            assert!(r.below(7) < 7);
        }
    }
}
