//! The [`Strategy`] trait and combinators (no shrinking: a strategy is a
//! seeded generator).

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// A generator of test values. Mirrors proptest's `Strategy`, minus
/// shrinking: `generate` draws one value from `rng`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { strategy: self, f }
    }

    /// Keep only values satisfying `pred` (re-drawing otherwise).
    fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { strategy: self, pred, whence }
    }

    /// Type-erase into a [`BoxedStrategy`] (needed by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(move |rng| self.generate(rng)))
    }
}

/// A type-erased strategy.
#[derive(Clone)]
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Always generates a clone of the given value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Output of [`Strategy::prop_map`].
#[derive(Clone, Copy, Debug)]
pub struct Map<S, F> {
    strategy: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.strategy.generate(rng))
    }
}

/// Output of [`Strategy::prop_filter`].
#[derive(Clone, Copy, Debug)]
pub struct Filter<S, F> {
    strategy: S,
    pred: F,
    whence: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..10_000 {
            let v = self.strategy.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter '{}' rejected 10000 consecutive draws", self.whence);
    }
}

/// Uniform choice among boxed strategies (the `prop_oneof!` backend).
pub struct OneOf<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> OneOf<T> {
    /// Choose uniformly among `options` (must be non-empty).
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one strategy");
        OneOf { options }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

/// Integer ranges are strategies, like in proptest: `0u8..32`,
/// `1u64..200`, `0usize..4`, ...
macro_rules! int_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = if span > u64::MAX as u128 {
                    // Only reachable for the full u128-wide i/u64 ranges.
                    rng.next_u64() as u128
                } else {
                    rng.below(span as u64) as u128
                };
                (self.start as i128 + off as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let span = (*self.end() as i128 - *self.start() as i128) as u128 + 1;
                let off = if span > u64::MAX as u128 {
                    rng.next_u64() as u128
                } else {
                    rng.below(span as u64) as u128
                };
                (*self.start() as i128 + off as i128) as $t
            }
        }
    )+};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Tuples of strategies generate tuples of values.
macro_rules! tuple_strategy {
    ($($s:ident => $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A => 0);
tuple_strategy!(A => 0, B => 1);
tuple_strategy!(A => 0, B => 1, C => 2);
tuple_strategy!(A => 0, B => 1, C => 2, D => 3);
tuple_strategy!(A => 0, B => 1, C => 2, D => 3, E => 4);
tuple_strategy!(A => 0, B => 1, C => 2, D => 3, E => 4, F => 5);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::from_seed(1);
        for _ in 0..2000 {
            let v = (5u8..9).generate(&mut rng);
            assert!((5..9).contains(&v));
            let w = (-5i32..5).generate(&mut rng);
            assert!((-5..5).contains(&w));
            let x = (0u64..1).generate(&mut rng);
            assert_eq!(x, 0);
            let y = (10i64..=10).generate(&mut rng);
            assert_eq!(y, 10);
        }
    }

    #[test]
    fn map_and_oneof_compose() {
        let mut rng = TestRng::from_seed(2);
        let s = crate::prop_oneof![Just(0u32), (1u32..10).prop_map(|v| v * 100),];
        let mut saw_zero = false;
        let mut saw_mapped = false;
        for _ in 0..200 {
            match s.generate(&mut rng) {
                0 => saw_zero = true,
                v => {
                    assert!((100..1000).contains(&v) && v % 100 == 0);
                    saw_mapped = true;
                }
            }
        }
        assert!(saw_zero && saw_mapped);
    }

    #[test]
    fn tuples_generate_componentwise() {
        let mut rng = TestRng::from_seed(3);
        let (a, b, c) = (0u8..2, 10u64..20, Just(true)).generate(&mut rng);
        assert!(a < 2);
        assert!((10..20).contains(&b));
        assert!(c);
    }

    #[test]
    fn filter_retries() {
        let mut rng = TestRng::from_seed(4);
        let s = (0u32..100).prop_filter("even", |v| v % 2 == 0);
        for _ in 0..100 {
            assert_eq!(s.generate(&mut rng) % 2, 0);
        }
    }
}
