//! # SlackSim-RS — "Exploiting Simulation Slack to Improve Parallel
//! Simulation Speed" (Chen, Annavaram, Dubois — ICPP 2009), in Rust
//!
//! This meta-crate re-exports the whole workspace and hosts the
//! integration tests and runnable examples. The interesting code lives in:
//!
//! | crate | contents |
//! |---|---|
//! | [`isa`] (`sk-isa`) | the mini RISC ISA, assembler, program builder |
//! | [`mem`] (`sk-mem`) | caches, MSHRs, directory MESI, NUCA L2, bus |
//! | [`core`] (`sk-core`) | the SlackSim engine: schemes, clocks, cores, manager |
//! | [`kernels`] (`sk-kernels`) | Barnes / FFT / LU / Water + microbenchmarks |
//! | [`hostsim`] (`sk-hostsim`) | deterministic virtual host for Figure 8 |
//!
//! See README.md for a tour, DESIGN.md for the system inventory, and
//! EXPERIMENTS.md for paper-vs-measured results.
//!
//! ```no_run
//! use slacksim_suite::prelude::*;
//!
//! let w = kernels::fft::fft(8, 10); // 8 threads, 1024 points
//! let cfg = TargetConfig::paper_8core();
//! let baseline = run_sequential(&w.program, &cfg);
//! let s9 = run_parallel(&w.program, Scheme::BoundedSlack(9), &cfg);
//! println!("S9 error: {:.3}%", 100.0 * s9.exec_time_error(&baseline));
//! ```

pub use sk_core as core;
pub use sk_hostsim as hostsim;
pub use sk_isa as isa;
pub use sk_kernels as kernels;
pub use sk_mem as mem;

/// The items most programs need.
pub mod prelude {
    pub use sk_core::{
        run_parallel, run_sequential, CoreModel, Scheme, SimReport, StopCondition, TargetConfig,
    };
    pub use sk_hostsim::{CostModel, VirtualHost};
    pub use sk_isa::{ProgramBuilder, Reg, Syscall};
    pub use sk_kernels::{self as kernels, paper_suite, Scale, Workload};
}
